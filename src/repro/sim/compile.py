"""Compile-once, run-many fast path for the operational simulator.

:class:`~repro.sim.machine.GpuMachine` interprets each litmus test
generically: every iteration re-dispatches each instruction through the
decoder table, rebuilds the memory system and thread engines from
scratch, creates a dataclass per pending memory operation and formats
intent-dictionary keys inside the preserved-program-order check.  That
per-instruction interpretation is the hot path behind every figure
benchmark and the Sec. 5.4 soundness campaign.

:func:`compile_cell` removes that overhead by lowering one
``(test, chip, incantations)`` cell ahead of time:

* each instruction becomes a specialized **step closure** with its
  dispatch resolved and operands pre-decoded (``Loc``-based addresses
  folded to integers, immediates to constants, the decoder table gone);
* fence scope checks are pre-bound against the test's
  :class:`~repro.hierarchy.ScopeTree`: a ``membar`` whose scope covers
  the cell's required scope compiles to an unconditional enqueue, an
  under-scoped one to the chip's damping draw;
* the preserved-program-order check reads pre-computed pass-rule slots
  from an intent *vector* instead of formatting dictionary keys;
* machine and memory state is **reused across iterations** — dicts are
  cleared and refilled rather than reallocated, and the compiled cell is
  reused across all shards that a backend runs in-process.

Correctness contract (property-tested in ``tests/test_sim_compile.py``):
for the same seed, a compiled cell consumes the underlying ``Random``
stream in *exactly* the same sequence as the reference engine, and
therefore produces **bit-identical histograms** for every test × chip ×
incantation combination and any shard decomposition.  Anything less
would silently change every figure benchmark; any intentional change to
the reference semantics must be mirrored here (the equivalence suite
fails loudly otherwise).
"""

from ..errors import FuelExhausted, SimulationError
from ..litmus.condition import FinalState
from ..ptx.instructions import (Add, And, AtomAdd, AtomCas, AtomExch,
                                AtomInc, Bra, Cvt, Label, Ld, Membar, Mov,
                                Setp, St, Xor)
from ..ptx.operands import Addr, Imm, Loc, Reg
from ..ptx.types import MemorySpace, Scope
from .._util import wrap32
from .machine import _FUEL_PER_INSTRUCTION

# -- pending-op kinds (integer codes; the reference engine uses strings) --

K_LOAD, K_STORE, K_FENCE, K_CAS, K_EXCH, K_ADD = range(6)

# -- intent-vector slots ----------------------------------------------------
#
# The slot order *is* the reference draw order of
# :meth:`ChipProfile.draw_intents`: the five relaxation kinds of
# ``ChipProfile.RELAXATIONS`` (minus ``volatile_relax``), then
# ``volatile_relax``, then ``mixed_hazard``, then one (mixed, ca) bypass
# pair per :class:`Scope` in enum order.  One ``rng.random()`` per slot,
# so the fast path's Bernoulli stream matches the reference bit for bit.

SLOT_R_PASS_W = 0
SLOT_W_PASS_W = 1
SLOT_R_PASS_R = 2
SLOT_W_PASS_R = 3
SLOT_RR_HAZARD = 4
SLOT_VOLATILE = 5
SLOT_MIXED_HAZARD = 6
SLOT_BYPASS_BASE = 7

#: pass-rule slot for (younger is_store, older is_store) — the compiled
#: twin of the reference engine's ``intents["%s_pass_%s"]`` lookup.
_PASS_PAIR = {
    False: (SLOT_R_PASS_R, SLOT_R_PASS_W),   # younger is a read
    True: (SLOT_W_PASS_R, SLOT_W_PASS_W),    # younger writes (incl. atomics)
}

_SCOPES = list(Scope)


def _bypass_slots(scope):
    """(mixed_bypass, ca_bypass) intent slots for a fence of ``scope``."""
    index = _SCOPES.index(scope)
    return (SLOT_BYPASS_BASE + 2 * index, SLOT_BYPASS_BASE + 2 * index + 1)


class _OpStatic:
    """Per-*instruction* facts shared by every pending op it enqueues.

    Built once at compile time; the per-iteration :class:`_Op` carries
    only the dynamic fields (sequence number, address, operand values).
    """

    __slots__ = ("kind", "dst", "cop", "volatile", "is_load", "is_store",
                 "atomic", "ca_load", "pass_pair", "mixed_slot", "ca_slot",
                 "inval_prob")

    def __init__(self, kind, dst=None, cop=None, volatile=False,
                 mixed_slot=0, ca_slot=0, inval_prob=0.0):
        self.kind = kind
        self.dst = dst
        self.cop = cop
        self.volatile = volatile
        self.is_load = kind in (K_LOAD, K_CAS, K_EXCH, K_ADD)
        self.is_store = kind in (K_STORE, K_CAS, K_EXCH, K_ADD)
        self.atomic = kind in (K_CAS, K_EXCH, K_ADD)
        self.ca_load = kind == K_LOAD and cop == "ca"
        self.pass_pair = _PASS_PAIR[self.is_store]
        self.mixed_slot = mixed_slot
        self.ca_slot = ca_slot
        self.inval_prob = inval_prob


class _Op:
    """One pending memory operation (the fast twin of ``PendingOp``)."""

    __slots__ = ("seq", "address", "value", "compare", "st")

    def __init__(self, seq, address, value, compare, st):
        self.seq = seq
        self.address = address
        self.value = value
        self.compare = compare
        self.st = st


_MISS = object()


class _Memory:
    """The simulated memory system, reset (not reallocated) per iteration.

    Semantics — including every ``rng.random()`` draw and its position in
    the stream — mirror :class:`~repro.sim.memory.MemorySystem` exactly;
    chip knobs and the space of every address are pre-bound at compile
    time instead of being re-derived per access.
    """

    __slots__ = ("n_sms", "rng", "stale", "global_mem", "shared_mem", "l1",
                 "init_global", "init_shared", "shared_addrs",
                 "l1_stale_reads", "p_l1_warm", "p_store_inval",
                 "p_cg_evict")

    def __init__(self, chip, init_global, init_shared, shared_addrs):
        self.n_sms = chip.n_sms
        self.rng = None
        self.stale = False
        self.init_global = init_global     # insertion order = install order
        self.init_shared = init_shared
        self.shared_addrs = shared_addrs
        self.l1_stale_reads = chip.l1_stale_reads
        self.p_l1_warm = chip.p_l1_warm
        self.p_store_inval = chip.p_store_invalidates_own_l1
        self.p_cg_evict = chip.p_cg_evicts_l1
        self.global_mem = dict(init_global)
        self.shared_mem = [dict(init_shared) for _ in range(self.n_sms)]
        self.l1 = [{} for _ in range(self.n_sms)]

    def reset(self, rng, stale_intent):
        """Restore the initial state and (re-)seed the stale-L1 lines.

        ``stale_intent`` must already be ANDed with the chip's
        ``l1_stale_reads`` switch (as ``MemorySystem.__init__`` does).
        The address sets are fixed per cell — writes to uninstalled
        addresses raise — so restoring is a plain ``update`` with the
        initial image, no clearing; only non-empty L1 lines are dropped.
        """
        self.rng = rng
        self.stale = stale_intent
        global_mem = self.global_mem
        global_mem.update(self.init_global)
        init_shared = self.init_shared
        if init_shared:
            for shared in self.shared_mem:
                shared.update(init_shared)
        for line in self.l1:
            if line:
                line.clear()
        if stale_intent:
            # The warm-line seeding of MemorySystem.warm_l1: one draw per
            # (SM, global location) in install order.
            warm = self.p_l1_warm
            random = rng.random
            for line in self.l1:
                for address, value in global_mem.items():
                    if random() < warm:
                        line[address] = value

    def read(self, sm, address, cop, volatile):
        value = self.global_mem.get(address, _MISS)
        if value is _MISS:
            if address in self.shared_addrs:
                return self.shared_mem[sm][address]
            raise SimulationError("access to uninstalled address %#x" % address)
        if volatile or cop is None:
            return value
        if cop == "ca":
            line = self.l1[sm]
            cached = line.get(address)
            if cached is not None and self.stale:
                return cached
            if self.l1_stale_reads:
                line[address] = value
            return value
        if cop == "cg" or cop == "cv":
            line = self.l1[sm]
            if address in line:
                if self.rng.random() < self.p_cg_evict:
                    del line[address]
            return value
        return value

    def write(self, sm, address, value):
        if address in self.shared_addrs:
            self.shared_mem[sm][address] = value
            return
        if address not in self.global_mem:
            raise SimulationError("access to uninstalled address %#x" % address)
        self.global_mem[address] = value
        line = self.l1[sm]
        if address in line:
            if self.rng.random() < self.p_store_inval:
                del line[address]

    def fence(self, sm, probability):
        line = self.l1[sm]
        if probability <= 0.0 or not line:
            return
        random = self.rng.random
        for address in list(line):
            if random() < probability:
                del line[address]

    def atomic_read(self, sm, address):
        if address in self.shared_addrs:
            return self.shared_mem[sm][address]
        value = self.global_mem.get(address, _MISS)
        if value is _MISS:
            raise SimulationError("access to uninstalled address %#x" % address)
        return value

    def atomic_write(self, sm, address, value):
        if address in self.shared_addrs:
            self.shared_mem[sm][address] = value
        elif address in self.global_mem:
            self.global_mem[address] = value
        else:
            raise SimulationError("access to uninstalled address %#x" % address)

    def final_value(self, address):
        if address not in self.shared_addrs:
            return self.global_mem[address]
        values = {shared.get(address) for shared in self.shared_mem}
        values.discard(None)
        if len(values) == 1:
            return values.pop()
        return next(iter(sorted(v for v in values if v is not None)))


class _Thread:
    """Compiled frontend + pending queue for one thread.

    ``code`` is the list of step closures produced by :class:`_Compiler`
    — one per instruction, sharing program-counter indices with the
    source program so branch targets line up.  A closure returns True
    for progress (instruction retired or op enqueued) and False for a
    stall, which is all the decode loop needs.
    """

    __slots__ = ("code", "ncode", "init_regs", "regs", "pending", "queue",
                 "seq", "pc", "sm", "rng", "memory", "atomic_ordered",
                 "volatile_ordered")

    #: Issue-window size and decode budget of the reference engine.
    WINDOW = 16
    BUDGET = 32

    def __init__(self, code, init_regs, memory, chip):
        self.code = code
        self.ncode = len(code)
        self.init_regs = init_regs
        self.regs = dict(init_regs)
        self.pending = set()
        self.queue = []
        self.seq = 0
        self.pc = 0
        self.sm = 0
        self.rng = None
        self.memory = memory
        self.atomic_ordered = chip.atomic_ordered
        self.volatile_ordered = chip.volatile_ordered

    def reset(self, rng):
        regs = self.regs
        regs.clear()
        regs.update(self.init_regs)
        self.pending.clear()
        del self.queue[:]
        self.seq = 0
        self.pc = 0
        self.rng = rng

    @property
    def done(self):
        return self.pc >= self.ncode and not self.queue

    def decode(self):
        code = self.code
        ncode = self.ncode
        queue = self.queue
        progressed = False
        budget = self.BUDGET
        while budget and self.pc < ncode and len(queue) < self.WINDOW:
            if code[self.pc](self):
                progressed = True
                budget -= 1
            else:
                break
        return progressed

    def eligible_ops(self, iv):
        """Queue entries that may issue now, oldest first.

        The inlined twin of the reference engine's
        ``eligible_ops``/``may_pass``/``_may_bypass_fence`` trio; the
        queue is seq-ascending by construction, so the first entry is
        always the oldest eligible op.
        """
        queue = self.queue
        atomic_ordered = self.atomic_ordered
        volatile_ordered = self.volatile_ordered
        out = []
        for index, younger in enumerate(queue):
            yst = younger.st
            ykind = yst.kind
            ok = True
            for j in range(index):
                older = queue[j]
                ost = older.st
                if ykind == K_FENCE:
                    ok = False
                    break
                if ost.kind == K_FENCE:
                    # A .ca load may slip past a fence (Figs. 3 and 4);
                    # nothing else may.
                    if not yst.ca_load:
                        ok = False
                        break
                    address = younger.address
                    fence_seq = older.seq
                    same_addr_before = False
                    for probe in queue:
                        if (probe.seq < fence_seq and probe.st.is_load
                                and probe.address == address):
                            same_addr_before = True
                            break
                    slot = ost.mixed_slot if same_addr_before else ost.ca_slot
                    if not iv[slot]:
                        ok = False
                        break
                    continue
                if atomic_ordered and (yst.atomic or ost.atomic):
                    ok = False
                    break
                if yst.volatile and ost.volatile:
                    if volatile_ordered or not iv[SLOT_VOLATILE]:
                        ok = False
                        break
                if younger.address == older.address:
                    if ykind == K_LOAD and ost.kind == K_LOAD:
                        hazard = (iv[SLOT_RR_HAZARD] if yst.cop == ost.cop
                                  else iv[SLOT_MIXED_HAZARD])
                        if hazard:
                            continue
                    ok = False
                    break
                if not iv[yst.pass_pair[ost.is_store]]:
                    ok = False
                    break
            if ok:
                out.append(younger)
        return out

    def issue(self, op):
        self.queue.remove(op)
        st = op.st
        kind = st.kind
        memory = self.memory
        sm = self.sm
        if kind == K_LOAD:
            value = memory.read(sm, op.address, st.cop, st.volatile)
        elif kind == K_STORE:
            memory.write(sm, op.address, op.value)
            return
        elif kind == K_FENCE:
            memory.fence(sm, st.inval_prob)
            return
        elif kind == K_CAS:
            value = memory.atomic_read(sm, op.address)
            if value == op.compare:
                memory.atomic_write(sm, op.address, op.value)
        elif kind == K_EXCH:
            value = memory.atomic_read(sm, op.address)
            memory.atomic_write(sm, op.address, op.value)
        else:  # K_ADD
            value = memory.atomic_read(sm, op.address)
            memory.atomic_write(sm, op.address, value + op.value)
        self.regs[st.dst] = value
        self.pending.discard(st.dst)

    def tick(self, iv, any_intent):
        progressed = self.decode()
        eligible = self.eligible_ops(iv)
        if eligible:
            # Under an active relaxation intent the engine *seeks*
            # reorderings, exactly like the reference: pick a random
            # non-oldest eligible op when one exists.
            if any_intent and len(eligible) > 1:
                op = self.rng.choice(eligible[1:])
            else:
                op = eligible[0]
            self.issue(op)
            return True
        return progressed


class _Compiler:
    """Lowers one thread program into step closures."""

    def __init__(self, program, address_map, required_scope, scope_blind,
                 underscoped_damping, fence_inval):
        self.program = program
        self.address_map = address_map
        self.required_scope = required_scope
        self.scope_blind = scope_blind
        self.underscoped_damping = underscoped_damping
        self.fence_inval = fence_inval  # Scope -> invalidation probability
        #: One :class:`_OpStatic` per memory instruction, in program
        #: order — the same order the batch compiler assigns queue
        #: slots, which is what lets a suspended batch row be
        #: transplanted onto this cell (slot k <-> op_statics[k]).
        self.op_statics = []

    def compile(self):
        return [self._compile_one(instruction)
                for instruction in self.program.instructions]

    def _compile_one(self, instruction):
        handler = self._COMPILERS[type(instruction)]
        step = handler(self, instruction)
        guard = getattr(instruction, "guard", None)
        if guard is None:
            return step
        greg = guard.reg
        wanted = 0 if guard.negated else 1

        def guarded(t, _inner=step, _greg=greg, _wanted=wanted):
            if _greg in t.pending:
                return False
            if (1 if t.regs.get(_greg, 0) else 0) != _wanted:
                t.pc += 1
                return True
            return _inner(t)

        return guarded

    # -- operand pre-decoding ---------------------------------------------

    def _addr(self, addr):
        """Pre-decode an address operand.

        Returns ``(const_address, None)`` for ``Loc`` bases (fully
        resolved at compile time) or ``(offset, register_name)`` for
        register-relative addressing (dependency chains, Fig. 13).
        """
        if isinstance(addr.base, Loc):
            return self.address_map[addr.base.name] + addr.offset, None
        return addr.offset, addr.base.name

    def _value(self, operand):
        """Pre-decode a value operand: ``(const, None)`` or ``(0, reg)``."""
        if isinstance(operand, Imm):
            return operand.value, None
        if isinstance(operand, Reg):
            return 0, operand.name
        raise SimulationError("bad value operand %r" % (operand,))

    # -- memory instructions ----------------------------------------------

    def _push_step(self, st, addr_const, addr_reg, value=(None, None),
                   compare=(None, None), extra_ready=()):
        """Build the generic enqueue closure: check readiness, resolve the
        dynamic operands, append one :class:`_Op`.

        ``extra_ready`` lists additional registers that must not be
        pending (source/comparand registers).  The common all-constant
        case compiles to a closure with no register lookups at all.
        """
        vconst, vreg = value
        cconst, creg = compare
        dst = st.dst
        ready = tuple(reg for reg in (addr_reg,) + tuple(extra_ready)
                      if reg is not None)

        if not ready:
            # All operands compile-time constant (the common litmus
            # shape): no readiness checks, no register lookups.
            if dst is None:
                def step(t, _st=st):
                    t.queue.append(_Op(t.seq, addr_const, vconst, cconst,
                                       _st))
                    t.seq += 1
                    t.pc += 1
                    return True
            else:
                def step(t, _st=st):
                    t.pending.add(dst)
                    t.queue.append(_Op(t.seq, addr_const, vconst, cconst,
                                       _st))
                    t.seq += 1
                    t.pc += 1
                    return True
            return step

        def step(t):
            pending = t.pending
            for reg in ready:
                if reg in pending:
                    return False
            regs = t.regs
            address = (addr_const if addr_reg is None
                       else regs.get(addr_reg, 0) + addr_const)
            value_ = vconst if vreg is None else regs.get(vreg, 0)
            compare_ = cconst if creg is None else regs.get(creg, 0)
            if dst is not None:
                pending.add(dst)
            t.queue.append(_Op(t.seq, address, value_, compare_, st))
            t.seq += 1
            t.pc += 1
            return True

        return step

    def _compile_ld(self, instruction):
        cop = (None if instruction.volatile
               else instruction.effective_cop.value)
        st = _OpStatic(K_LOAD, dst=instruction.dst.name, cop=cop,
                       volatile=instruction.volatile)
        self.op_statics.append(st)
        addr_const, addr_reg = self._addr(instruction.addr)
        return self._push_step(st, addr_const, addr_reg)

    def _compile_st(self, instruction):
        cop = (None if instruction.volatile
               else instruction.effective_cop.value)
        st = _OpStatic(K_STORE, cop=cop, volatile=instruction.volatile)
        self.op_statics.append(st)
        addr_const, addr_reg = self._addr(instruction.addr)
        value = self._value(instruction.src)
        return self._push_step(st, addr_const, addr_reg, value=value,
                               extra_ready=(value[1],))

    def _compile_cas(self, instruction):
        st = _OpStatic(K_CAS, dst=instruction.dst.name)
        self.op_statics.append(st)
        addr_const, addr_reg = self._addr(instruction.addr)
        compare = self._value(instruction.cmp)
        value = self._value(instruction.new)
        return self._push_step(st, addr_const, addr_reg, value=value,
                               compare=compare,
                               extra_ready=(compare[1], value[1]))

    def _compile_exch(self, instruction):
        st = _OpStatic(K_EXCH, dst=instruction.dst.name)
        self.op_statics.append(st)
        addr_const, addr_reg = self._addr(instruction.addr)
        value = self._value(instruction.src)
        return self._push_step(st, addr_const, addr_reg, value=value,
                               extra_ready=(value[1],))

    def _compile_inc(self, instruction):
        st = _OpStatic(K_ADD, dst=instruction.dst.name)
        self.op_statics.append(st)
        addr_const, addr_reg = self._addr(instruction.addr)
        return self._push_step(st, addr_const, addr_reg, value=(1, None))

    def _compile_atom_add(self, instruction):
        st = _OpStatic(K_ADD, dst=instruction.dst.name)
        self.op_statics.append(st)
        addr_const, addr_reg = self._addr(instruction.addr)
        value = self._value(instruction.src)
        return self._push_step(st, addr_const, addr_reg, value=value,
                               extra_ready=(value[1],))

    def _compile_membar(self, instruction):
        scope = instruction.scope
        mixed_slot, ca_slot = _bypass_slots(scope)
        st = _OpStatic(K_FENCE, mixed_slot=mixed_slot, ca_slot=ca_slot,
                       inval_prob=self.fence_inval.get(scope, 1.0))
        self.op_statics.append(st)
        covered = self.scope_blind or scope.covers(self.required_scope)
        if covered:
            # The scope check is pre-bound: a sufficient fence always
            # enters the queue, with no per-iteration decision.
            def step(t, _st=st):
                t.queue.append(_Op(t.seq, None, None, None, _st))
                t.seq += 1
                t.pc += 1
                return True

            return step
        # Under-scoped fence: usually still effective on real chips —
        # only the chip's damping fraction of runs sees it as a no-op
        # (the non-zero membar.cta rows of Fig. 3).  One draw per decode,
        # matching GpuMachine._fence_policy exactly (the draw happens
        # even when damping is 0).
        damping = self.underscoped_damping

        def step(t, _st=st, _damping=damping):
            if t.rng.random() >= _damping:
                t.queue.append(_Op(t.seq, None, None, None, _st))
                t.seq += 1
            t.pc += 1
            return True

        return step

    # -- ALU / control ------------------------------------------------------

    def _compile_mov(self, instruction):
        dst = instruction.dst.name
        if isinstance(instruction.src, Loc):
            const = self.address_map[instruction.src.name]

            def step(t, _dst=dst, _const=const):
                t.regs[_dst] = _const
                t.pc += 1
                return True

            return step
        const, reg = self._value(instruction.src)
        if reg is None:
            def step(t, _dst=dst, _const=const):
                t.regs[_dst] = _const
                t.pc += 1
                return True

            return step

        def step(t, _dst=dst, _reg=reg):
            if _reg in t.pending:
                return False
            t.regs[_dst] = t.regs.get(_reg, 0)
            t.pc += 1
            return True

        return step

    def _compile_alu(self, instruction):
        ops = {"add": lambda a, b: wrap32(a + b),
               "and": lambda a, b: a & b,
               "xor": lambda a, b: a ^ b}
        return self._binary(instruction, ops[instruction.opcode])

    def _compile_setp(self, instruction):
        if instruction.cmp == "eq":
            return self._binary(instruction, lambda a, b: int(a == b))
        return self._binary(instruction, lambda a, b: int(a != b))

    def _binary(self, instruction, fn):
        dst = instruction.dst.name
        aconst, areg = self._value(instruction.a)
        bconst, breg = self._value(instruction.b)

        def step(t, _dst=dst, _fn=fn):
            pending = t.pending
            if areg is not None and areg in pending:
                return False
            if breg is not None and breg in pending:
                return False
            regs = t.regs
            a = aconst if areg is None else regs.get(areg, 0)
            b = bconst if breg is None else regs.get(breg, 0)
            regs[_dst] = _fn(a, b)
            t.pc += 1
            return True

        return step

    def _compile_cvt(self, instruction):
        dst = instruction.dst.name
        src = instruction.src.name

        def step(t, _dst=dst, _src=src):
            if _src in t.pending:
                return False
            t.regs[_dst] = t.regs.get(_src, 0)
            t.pc += 1
            return True

        return step

    def _compile_bra(self, instruction):
        target = self.program.labels[instruction.target]

        def step(t, _target=target):
            t.pc = _target
            return True

        return step

    def _compile_label(self, instruction):
        # Labels retire like the reference engine's: they consume decode
        # budget and count as progress (scheduler parity).
        def step(t):
            t.pc += 1
            return True

        return step

    _COMPILERS = {
        Ld: _compile_ld,
        St: _compile_st,
        AtomCas: _compile_cas,
        AtomExch: _compile_exch,
        AtomInc: _compile_inc,
        AtomAdd: _compile_atom_add,
        Membar: _compile_membar,
        Mov: _compile_mov,
        Add: _compile_alu,
        And: _compile_alu,
        Xor: _compile_alu,
        Cvt: _compile_cvt,
        Setp: _compile_setp,
        Bra: _compile_bra,
        Label: _compile_label,
    }


class CompiledCell:
    """One ``(test, chip, incantations)`` cell lowered for fast execution.

    Exposes the same ``run_once(rng)`` contract as
    :class:`~repro.sim.machine.GpuMachine` — and, by construction, the
    same ``Random``-stream consumption — so the two are drop-in
    interchangeable anywhere a machine is iterated
    (:func:`~repro.sim.engine.run_batch`, the backends, the apps).

    Build via :func:`compile_cell`; instances hold closures and are not
    picklable — process-pool backends compile in each worker instead.
    """

    def __init__(self, test, chip, intensity=1.0, stale_intensity=None,
                 shuffle_placement=False, fuel=None, scope_blind=False):
        self.test = test
        self.chip = chip
        self.intensity = intensity
        self.stale_intensity = (intensity if stale_intensity is None
                                else stale_intensity)
        self.shuffle_placement = shuffle_placement
        self.scope_blind = scope_blind
        address_map = test.address_map()
        self.address_map = address_map

        placement = test.scope_tree.classify()
        required_scope = Scope.GL if placement == "inter-cta" else Scope.CTA
        total_instructions = sum(len(program) for program in test.threads)
        self.fuel = fuel or _FUEL_PER_INSTRUCTION * max(total_instructions, 1)

        # -- intent draw plan (order documented at the slot constants) --
        relax = chip.relax_probability
        probs = [relax("r_pass_w") * intensity,
                 relax("w_pass_w") * intensity,
                 relax("r_pass_r") * intensity,
                 relax("w_pass_r") * intensity,
                 relax("rr_hazard") * intensity,
                 relax("volatile_relax"),
                 chip.p_mixed_hazard * intensity]
        for scope in _SCOPES:
            probs.append(chip.p_mixed_bypass.get(scope, 0.0))
            probs.append(chip.p_ca_bypass.get(scope, 0.0))
        self.draw_probs = probs
        self.p_stale = chip.p_stale * self.stale_intensity
        self.l1_stale_reads = chip.l1_stale_reads

        # -- memory image -----------------------------------------------
        init_global = {}
        init_shared = {}
        shared_addrs = set()
        for name, address in address_map.items():
            value = test.initial_value(name)
            if test.space_of(name) is MemorySpace.SHARED:
                shared_addrs.add(address)
                init_shared[address] = value
            else:
                init_global[address] = value
        self.memory = _Memory(chip, init_global, init_shared,
                              frozenset(shared_addrs))
        self._final_addresses = sorted(address_map.items())

        # -- thread programs --------------------------------------------
        self.n_sms = max(chip.n_sms, 1)
        self.n_ctas = test.scope_tree.n_ctas
        self.thread_ctas = [test.scope_tree.placement(program.name).cta
                            for program in test.threads]
        self.threads = []
        self._op_statics = []
        for program in test.threads:
            init_regs = {}
            for (tid, name), binding in test.reg_init.items():
                if tid != program.tid:
                    continue
                if isinstance(binding, Loc):
                    init_regs[name] = address_map[binding.name]
                else:
                    init_regs[name] = binding.value
            compiler = _Compiler(
                program, address_map, required_scope, scope_blind,
                chip.underscoped_fence_damping,
                chip.fence_l1_inval)
            code = compiler.compile()
            self._op_statics.append(compiler.op_statics)
            self.threads.append(_Thread(code, init_regs, self.memory, chip))
        if not shuffle_placement:
            for thread, cta in zip(self.threads, self.thread_ctas):
                thread.sm = cta % self.n_sms
        self._observed = tuple(test.observed_registers())
        self._final_state_cls = FinalState
        self._stall_limit = (4 * len(self.threads)
                             * (len(test.threads) + 4))

    def run_once(self, rng):
        """Run one iteration; returns the observed FinalState.

        The draw sequence — intents, staleness, L1 warm lines, CTA
        placement, scheduler picks, cache-effect draws — is identical to
        :meth:`GpuMachine.run_once` for the same ``rng`` state.
        """
        random = rng.random
        iv = [random() < p for p in self.draw_probs]
        if self.scope_blind:
            for index in range(SLOT_BYPASS_BASE, len(iv)):
                iv[index] = False
        any_intent = True in iv
        stale = random() < self.p_stale
        self.memory.reset(rng, stale and self.l1_stale_reads)
        threads = self.threads
        if self.shuffle_placement:
            n_sms = self.n_sms
            cta_sm = [rng.randrange(n_sms) for _ in range(self.n_ctas)]
            for thread, cta in zip(threads, self.thread_ctas):
                thread.sm = cta_sm[cta]
        for thread in threads:
            thread.reset(rng)

        return self._run_loop(rng, iv, any_intent, self.fuel)

    def _run_loop(self, rng, iv, any_intent, fuel):
        """The scheduler loop shared by :meth:`run_once` and
        :meth:`resume`: tick random runnable threads until quiescence."""
        threads = self.threads
        stall_limit = self._stall_limit
        stalled_rounds = 0
        choice = rng.choice
        while True:
            runnable = [t for t in threads
                        if t.pc < t.ncode or t.queue]
            if not runnable:
                break
            if fuel <= 0:
                raise FuelExhausted(
                    "test %s did not terminate (likely livelock)"
                    % self.test.name)
            thread = choice(runnable)
            if thread.tick(iv, any_intent):
                stalled_rounds = 0
            else:
                stalled_rounds += 1
                if stalled_rounds > stall_limit:
                    raise SimulationError(
                        "all threads stalled in %s — dependency deadlock?"
                        % self.test.name)
            fuel -= 1

        return self._final_state()

    def resume(self, snap, rng):
        """Finish one suspended iteration from a mid-flight snapshot.

        ``snap`` is the straggler hand-off payload built by
        :meth:`repro.sim.batch.BatchCell._snapshot_row`: the iteration's
        drawn intent vector plus complete machine state (memory image,
        L1 lines, per-thread registers/pending/queue) at a tick
        boundary.  The queue is rebuilt against this cell's op-static
        table — the batch compiler assigns slot ``k`` to the ``k``-th
        memory instruction of each thread, the same order
        ``_Compiler.op_statics`` records — and the scheduler loop then
        runs the iteration to quiescence on ``rng``.

        Fresh draws (scheduler picks, cache effects) come from ``rng``,
        not from the suspended batch stream: suspension happens at a
        tick boundary of a memoryless process, so continuing with any
        independent deterministic stream preserves the outcome
        distribution — the same documented stream-break contract as the
        batch engine itself.
        """
        iv = snap["iv"]
        any_intent = True in iv
        memory = self.memory
        memory.rng = rng
        memory.stale = snap["stale"]
        memory.global_mem.clear()
        memory.global_mem.update(snap["global"])
        for shared, image in zip(memory.shared_mem, snap["shared"]):
            shared.clear()
            shared.update(image)
        for line, image in zip(memory.l1, snap["l1"]):
            line.clear()
            line.update(image)
        for thread, statics, tsnap in zip(self.threads, self._op_statics,
                                          snap["threads"]):
            thread.rng = rng
            thread.sm = tsnap["sm"]
            thread.pc = tsnap["pc"]
            thread.seq = tsnap["seq"]
            regs = thread.regs
            regs.clear()
            regs.update(tsnap["regs"])
            pending = thread.pending
            pending.clear()
            pending.update(tsnap["pending"])
            queue = thread.queue
            del queue[:]
            for seq, slot, address, value, compare in tsnap["queue"]:
                st = statics[slot]
                if st.kind == K_FENCE:
                    queue.append(_Op(seq, None, None, None, st))
                else:
                    queue.append(_Op(seq, address, value, compare, st))
        return self._run_loop(rng, iv, any_intent, snap["fuel"])

    def _final_state(self):
        # _observed and _final_addresses are pre-sorted, so the tuples
        # can be built directly — same value FinalState.make would
        # produce, without the intermediate dicts and re-sorts.
        threads = self.threads
        memory = self.memory
        global_mem = memory.global_mem
        shared_addrs = memory.shared_addrs
        regs = tuple((key, threads[key[0]].regs.get(key[1], 0))
                     for key in self._observed)
        mem = tuple((name,
                     global_mem[address] if address not in shared_addrs
                     else memory.final_value(address))
                    for name, address in self._final_addresses)
        return self._final_state_cls(regs, mem)


def compile_cell(test, chip, intensity=1.0, stale_intensity=None,
                 shuffle_placement=False, fuel=None, scope_blind=False):
    """Lower one campaign cell into a :class:`CompiledCell`.

    Parameters mirror :class:`~repro.sim.machine.GpuMachine`; the result
    answers ``run_once(rng)`` with bit-identical outcomes.  Compile once
    per cell and iterate many times — the compile cost (~1 ms) amortises
    over a shard in a few dozen iterations.
    """
    return CompiledCell(test, chip, intensity=intensity,
                        stale_intensity=stale_intensity,
                        shuffle_placement=shuffle_placement, fuel=fuel,
                        scope_blind=scope_blind)
