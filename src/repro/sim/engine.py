"""Per-thread execution engine: in-order frontend, relaxed issue queue.

Each simulated thread decodes its instructions in order (ALU, predicates
and branches execute immediately; memory operations enter a *pending
queue*) and issues queued operations possibly out of order.  Which
reorderings are permitted is decided by the chip's structural switches —
dependencies are enforced naturally because the frontend cannot decode
past an instruction whose source registers are still pending loads.

The relaxations this machine exhibits are exactly those of the paper's
PTX model (Sec. 5): same-address pairs stay ordered except read-read
(the load-load hazard), fences order everything at sufficient scope,
and dependencies always order.
"""

from dataclasses import dataclass

from ..errors import SimulationError
from ..ptx.instructions import (Add, And, AtomAdd, AtomCas, AtomExch,
                                AtomInc, Bra, Cvt, Label, Ld, Membar, Mov,
                                Setp, St, Xor)
from ..ptx.operands import Addr, Imm, Loc, Reg
from .._util import wrap32

#: Pending-operation kinds.
LOAD, STORE, FENCE, CAS, EXCH, FETCH_ADD = "R", "W", "F", "CAS", "EXCH", "ADD"

#: The three simulation engines.  ``reference`` is this module's
#: generic per-instruction interpreter — the semantic ground truth.
#: ``fast`` is the compile-once/run-many specialisation of
#: :mod:`repro.sim.compile`, property-tested to produce bit-identical
#: histograms.  ``batch`` is the numpy structure-of-arrays lowering of
#: :mod:`repro.sim.batch`: whole shards execute in lockstep, another
#: order of magnitude faster, distribution-equivalent rather than
#: bit-identical (a documented seeded RNG-stream-break — see that
#: module's docstring) and gated on the optional ``repro[batch]``
#: dependency.
ENGINES = ("reference", "fast", "batch")

#: Engine used when nothing picks one explicitly (overridable per run
#: via ``RunSpec``/``Session``/``--engine`` or globally via the
#: ``REPRO_ENGINE`` environment variable).
DEFAULT_ENGINE = "fast"


def resolve_engine(engine):
    """Normalise an engine choice: ``None`` means the environment's
    ``REPRO_ENGINE`` (default ``fast``); anything else must name one of
    :data:`ENGINES`."""
    from .._util import resolve_choice
    return resolve_choice(engine, "REPRO_ENGINE", ENGINES, DEFAULT_ENGINE,
                          "engine")


#: Default straggler-tail threshold of the batch engine: once the live
#: fraction of a lockstep chunk falls to this share of its width, the
#: surviving rows are suspended and drained on the fast engine instead
#: of paying full-width numpy dispatch per tick (see
#: :mod:`repro.sim.batch`).
DEFAULT_BATCH_TAIL = 0.05

#: Valid range of the tail threshold.  0 disables the hand-off entirely
#: (bit-identical to the pre-tail batch stream); above 0.5 the engine
#: would spend most of its time re-batching instead of executing.
BATCH_TAIL_RANGE = (0.0, 0.5)


def resolve_batch_tail(value):
    """Normalise a batch tail-fraction choice.

    ``None`` consults the ``REPRO_BATCH_TAIL`` environment variable and
    falls back to :data:`DEFAULT_BATCH_TAIL`.  Anything else (string or
    number) must parse as a float inside :data:`BATCH_TAIL_RANGE`;
    junk raises :class:`~repro.errors.ConfigurationError` naming the
    valid range.  The knob only affects ``engine='batch'`` — the other
    engines have no lockstep tail to hand off.
    """
    import os

    from ..errors import ConfigurationError
    source = "batch tail fraction"
    if value is None:
        raw = os.environ.get("REPRO_BATCH_TAIL")
        if raw is None or raw == "":
            return DEFAULT_BATCH_TAIL
        value = raw
        source = "REPRO_BATCH_TAIL"
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            "%s must be a float in [%g, %g], got %r"
            % (source, BATCH_TAIL_RANGE[0], BATCH_TAIL_RANGE[1], value)
        ) from None
    low, high = BATCH_TAIL_RANGE
    if not (low <= parsed <= high):
        raise ConfigurationError(
            "%s must be in [%g, %g], got %r"
            % (source, low, high, value))
    return parsed


def run_batch(machine, iterations, rng, histogram=None):
    """Run ``iterations`` iterations of ``machine`` into a histogram.

    The batched iteration loop shared by all engines: ``machine`` is
    anything answering ``run_once(rng)`` — a
    :class:`~repro.sim.machine.GpuMachine` or a
    :class:`~repro.sim.compile.CompiledCell` — and is *reused* across
    iterations (state resets internally; nothing is reallocated per
    run).  A machine answering ``run_many`` (a
    :class:`~repro.sim.batch.BatchCell`) executes the whole request as
    one lockstep batch instead of looping.  Pass ``histogram`` to
    accumulate into an existing
    :class:`~repro.harness.histogram.Histogram`; otherwise a fresh one
    is returned.
    """
    if histogram is None:
        from ..harness.histogram import Histogram  # avoid an import cycle
        histogram = Histogram()
    run_many = getattr(machine, "run_many", None)
    if run_many is not None:
        return run_many(iterations, rng, histogram)
    add = histogram.add
    run_once = machine.run_once
    for _ in range(iterations):
        add(run_once(rng))
    return histogram


@dataclass
class PendingOp:
    """One memory operation awaiting issue."""

    seq: int
    kind: str
    address: int = None
    value: int = None        # store/exch/add operand
    compare: int = None      # CAS comparand
    dst: str = None          # destination register of loads/atomics
    cop: str = None
    volatile: bool = False
    scope: object = None     # fence scope

    @property
    def is_load(self):
        return self.kind in (LOAD, CAS, EXCH, FETCH_ADD)

    @property
    def is_store(self):
        return self.kind in (STORE, CAS, EXCH, FETCH_ADD)

    @property
    def is_atomic(self):
        return self.kind in (CAS, EXCH, FETCH_ADD)

    @property
    def is_fence(self):
        return self.kind == FENCE


class ThreadEngine:
    """Frontend + pending queue for one thread."""

    def __init__(self, program, sm, chip, memory, address_map, reg_init,
                 fence_effective, rng):
        self.program = program
        self.tid = program.tid
        self.sm = sm
        self.chip = chip
        self.memory = memory
        self.address_map = address_map
        self.rng = rng
        self.fence_effective = fence_effective  # Scope -> bool decision fn
        self.pc = 0
        self.regs = {}
        self.pending_regs = set()
        self.queue = []
        self._seq = 0
        self.executed = 0
        for (tid, name), binding in reg_init.items():
            if tid != self.tid:
                continue
            if isinstance(binding, Loc):
                self.regs[name] = address_map[binding.name]
            else:
                self.regs[name] = binding.value

    # -- register/operand helpers ----------------------------------------

    def _ready(self, operand):
        if isinstance(operand, Reg):
            return operand.name not in self.pending_regs
        if isinstance(operand, Addr) and isinstance(operand.base, Reg):
            return operand.base.name not in self.pending_regs
        return True

    def _value(self, operand):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Reg):
            return self.regs.get(operand.name, 0)
        raise SimulationError("bad value operand %r" % (operand,))

    def _address(self, addr):
        if isinstance(addr.base, Loc):
            return self.address_map[addr.base.name] + addr.offset
        return self.regs.get(addr.base.name, 0) + addr.offset

    # -- status -----------------------------------------------------------

    @property
    def frontend_done(self):
        return self.pc >= len(self.program.instructions)

    @property
    def done(self):
        return self.frontend_done and not self.queue

    # -- decode ------------------------------------------------------------

    #: Issue-window size: how many memory ops may be pending at once.
    WINDOW = 16

    def decode(self, budget=32):
        """Decode instructions until a stall, the end of the program, or a
        full issue window.  Returns True if progress was made.

        Filling the window *before* issuing is what creates reordering
        opportunities: several decoded memory operations compete for
        issue and the chip's preserved-program-order rules arbitrate.
        """
        progressed = False
        while budget > 0 and not self.frontend_done and len(self.queue) < self.WINDOW:
            instruction = self.program.instructions[self.pc]
            outcome = self._decode_one(instruction)
            if outcome == "stall":
                break
            progressed = True
            budget -= 1
            self.executed += 1
        return progressed

    def _decode_one(self, instruction):
        if isinstance(instruction, Label):
            self.pc += 1
            return "ok"
        if instruction.guard is not None:
            if instruction.guard.reg in self.pending_regs:
                return "stall"
            value = self.regs.get(instruction.guard.reg, 0)
            wanted = 0 if instruction.guard.negated else 1
            if (1 if value else 0) != wanted:
                self.pc += 1
                return "ok"
        handler = self._DECODERS[type(instruction)]
        return handler(self, instruction)

    def _push(self, **kwargs):
        op = PendingOp(seq=self._seq, **kwargs)
        self._seq += 1
        self.queue.append(op)
        self.pc += 1
        return "pushed"

    def _decode_ld(self, instruction):
        if not self._ready(instruction.addr):
            return "stall"
        self.pending_regs.add(instruction.dst.name)
        return self._push(
            kind=LOAD, address=self._address(instruction.addr),
            dst=instruction.dst.name,
            cop=None if instruction.volatile else instruction.effective_cop.value,
            volatile=instruction.volatile)

    def _decode_st(self, instruction):
        if not (self._ready(instruction.addr) and self._ready(instruction.src)):
            return "stall"
        return self._push(
            kind=STORE, address=self._address(instruction.addr),
            value=self._value(instruction.src),
            cop=None if instruction.volatile else instruction.effective_cop.value,
            volatile=instruction.volatile)

    def _decode_cas(self, instruction):
        operands = (instruction.addr, instruction.cmp, instruction.new)
        if not all(self._ready(operand) for operand in operands):
            return "stall"
        self.pending_regs.add(instruction.dst.name)
        return self._push(
            kind=CAS, address=self._address(instruction.addr),
            compare=self._value(instruction.cmp),
            value=self._value(instruction.new), dst=instruction.dst.name)

    def _decode_exch(self, instruction):
        if not (self._ready(instruction.addr) and self._ready(instruction.src)):
            return "stall"
        self.pending_regs.add(instruction.dst.name)
        return self._push(
            kind=EXCH, address=self._address(instruction.addr),
            value=self._value(instruction.src), dst=instruction.dst.name)

    def _decode_inc(self, instruction):
        if not self._ready(instruction.addr):
            return "stall"
        self.pending_regs.add(instruction.dst.name)
        return self._push(kind=FETCH_ADD, address=self._address(instruction.addr),
                          value=1, dst=instruction.dst.name)

    def _decode_atom_add(self, instruction):
        if not (self._ready(instruction.addr) and self._ready(instruction.src)):
            return "stall"
        self.pending_regs.add(instruction.dst.name)
        return self._push(kind=FETCH_ADD, address=self._address(instruction.addr),
                          value=self._value(instruction.src),
                          dst=instruction.dst.name)

    def _decode_membar(self, instruction):
        if not self.fence_effective(instruction.scope):
            self.pc += 1  # an under-scoped fence acting as a no-op
            return "ok"
        return self._push(kind=FENCE, scope=instruction.scope)

    def _decode_mov(self, instruction):
        if isinstance(instruction.src, Loc):
            self.regs[instruction.dst.name] = self.address_map[instruction.src.name]
            self.pc += 1
            return "ok"
        if not self._ready(instruction.src):
            return "stall"
        self.regs[instruction.dst.name] = self._value(instruction.src)
        self.pc += 1
        return "ok"

    def _decode_alu(self, instruction):
        if not (self._ready(instruction.a) and self._ready(instruction.b)):
            return "stall"
        a, b = self._value(instruction.a), self._value(instruction.b)
        ops = {"add": lambda: wrap32(a + b), "and": lambda: a & b,
               "xor": lambda: a ^ b}
        self.regs[instruction.dst.name] = ops[instruction.opcode]()
        self.pc += 1
        return "ok"

    def _decode_cvt(self, instruction):
        if not self._ready(instruction.src):
            return "stall"
        self.regs[instruction.dst.name] = self._value(instruction.src)
        self.pc += 1
        return "ok"

    def _decode_setp(self, instruction):
        if not (self._ready(instruction.a) and self._ready(instruction.b)):
            return "stall"
        a, b = self._value(instruction.a), self._value(instruction.b)
        result = (a == b) if instruction.cmp == "eq" else (a != b)
        self.regs[instruction.dst.name] = int(result)
        self.pc += 1
        return "ok"

    def _decode_bra(self, instruction):
        self.pc = self.program.labels[instruction.target]
        return "ok"

    _DECODERS = {
        Ld: _decode_ld,
        St: _decode_st,
        AtomCas: _decode_cas,
        AtomExch: _decode_exch,
        AtomInc: _decode_inc,
        AtomAdd: _decode_atom_add,
        Membar: _decode_membar,
        Mov: _decode_mov,
        Add: _decode_alu,
        And: _decode_alu,
        Xor: _decode_alu,
        Cvt: _decode_cvt,
        Setp: _decode_setp,
        Bra: _decode_bra,
    }

    # -- issue --------------------------------------------------------------

    def may_pass(self, younger, older, intents):
        """May ``younger`` issue while ``older`` (earlier in program
        order) is still pending?  Implements the chip's preserved program
        order, gated by this iteration's relaxation intents.

        Atomics order like *stores*: they read and write at the L2 in one
        shot, so passing an older access is governed by the ``w_pass_*``
        rules (this is what lets a releasing ``atom.exch`` overtake the
        critical section's store, Fig. 9).  Same-address pairs never
        reorder except read-read (the load-load hazard of Fig. 1)."""
        chip = self.chip
        if younger.is_fence:
            return False
        if older.is_fence:
            return self._may_bypass_fence(younger, older, intents)
        if chip.atomic_ordered and (younger.is_atomic or older.is_atomic):
            return False
        if younger.volatile and older.volatile:
            if chip.volatile_ordered or not intents["volatile_relax"]:
                return False
        if younger.address == older.address:
            if younger.kind == LOAD and older.kind == LOAD:
                if younger.cop == older.cop:
                    return intents["rr_hazard"]
                # Mixed cache operators (.cg then .ca): the Fig. 4 refill
                # path — a separate, rarer hazard on Fermi/Kepler.
                return intents["mixed_hazard"]
            return False
        young_kind = "w" if younger.is_store else "r"
        old_kind = "w" if older.is_store else "r"
        return intents["%s_pass_%s" % (young_kind, old_kind)]

    def _may_bypass_fence(self, younger, fence, intents):
        """A ``.ca`` load may slip past a fence on Fermi-generation chips.

        Two distinct pathologies, with separately calibrated rates: the
        same-address refill path (Fig. 4: a ``.ca`` load after a ``.cg``
        load of the same location) and the different-location path
        (Fig. 3: no fence orders ``.ca`` loads on the Tesla C2075).
        """
        if younger.kind != LOAD or younger.cop != "ca":
            return False
        same_addr_before = any(
            op.is_load and op.address == younger.address
            for op in self.queue if op.seq < fence.seq)
        key = "mixed_bypass_" if same_addr_before else "ca_bypass_"
        return intents[key + fence.scope.value]

    def eligible_ops(self, intents):
        eligible = []
        for index, op in enumerate(self.queue):
            if all(self.may_pass(op, older, intents)
                   for older in self.queue[:index]):
                eligible.append(op)
        return eligible

    def issue(self, op):
        """Execute one pending op against the memory system."""
        self.queue.remove(op)
        memory, sm = self.memory, self.sm
        if op.kind == FENCE:
            memory.fence(sm, op.scope)
            return
        if op.kind == LOAD:
            value = memory.read(sm, op.address, cop=op.cop, volatile=op.volatile)
            self._complete_load(op.dst, value)
            return
        if op.kind == STORE:
            memory.write(sm, op.address, op.value, volatile=op.volatile)
            return
        if op.kind == CAS:
            self._complete_load(op.dst, memory.atomic_cas(
                sm, op.address, op.compare, op.value))
            return
        if op.kind == EXCH:
            self._complete_load(op.dst, memory.atomic_exch(sm, op.address, op.value))
            return
        if op.kind == FETCH_ADD:
            self._complete_load(op.dst, memory.atomic_add(sm, op.address, op.value))
            return
        raise SimulationError("unknown pending op kind %r" % op.kind)

    def _complete_load(self, dst, value):
        self.regs[dst] = value
        self.pending_regs.discard(dst)

    def tick(self, intents):
        """One scheduler slot: decode a little, then issue one op.

        Under an active relaxation intent the engine *seeks* reorderings
        (issuing a random non-oldest eligible op when one exists) — this
        plays the role of the paper's stressful workloads, which exist
        precisely to provoke the reorderings hardware only rarely
        exhibits.  Returns True if any progress was made."""
        progressed = self.decode()
        eligible = self.eligible_ops(intents)
        if eligible:
            youngest_first = [op for op in eligible
                              if op.seq != min(e.seq for e in eligible)]
            if youngest_first and any(intents.values()):
                op = self.rng.choice(youngest_first)
            else:
                op = min(eligible, key=lambda o: o.seq)
            self.issue(op)
            return True
        return progressed
