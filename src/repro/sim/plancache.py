"""Cross-worker compiled-plan cache for the batch engine.

Batch cells do not pickle — their numpy buffers and kernel closures are
rebuilt per process — so a process-pool campaign used to pay the full
lowering cost (program analysis, register allocation, slot tables) once
per *worker* rather than once per campaign.  A :class:`PlanStore` keeps
the picklable half of that work — the :meth:`~repro.sim.batch.BatchCell.plan`
analysis product — in a directory of pickle files next to the result
cache, so any worker (present or future process) can skip straight to
closure generation.

Safety model: entries are keyed by a SHA-256 of the full cell content
(litmus text, chip profile, intensity, plan format version), written
atomically (temp file + ``os.replace``) so concurrent workers never see
a torn file, and read tolerantly — any unreadable or undecodable entry
is a miss, and :class:`~repro.sim.batch.BatchCell` itself re-validates
the plan version before trusting it.  The cache is therefore purely an
accelerator: deleting the directory at any time only costs re-lowering.
"""

import hashlib
import os
import pickle
import tempfile
import threading

#: Per-process singletons, one per cache directory, so hit/miss counts
#: aggregate across every backend instance (and pool thread) of a
#: process and ``consume_stats`` deltas add up to the true totals.
_STORES = {}
_STORES_LOCK = threading.Lock()


def plan_store(directory):
    """The process-wide :class:`PlanStore` for ``directory``."""
    with _STORES_LOCK:
        store = _STORES.get(directory)
        if store is None:
            store = _STORES[directory] = PlanStore(directory)
        return store


def plan_signature(*parts):
    """Stable content key for one lowered cell.

    Callers pass everything the plan depends on (litmus text, chip
    repr, intensity, format version); the digest keeps file names flat
    and content-addressed.
    """
    payload = "\x1e".join(str(part) for part in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PlanStore:
    """Disk-backed store of pickled lowering plans with hit accounting."""

    def __init__(self, directory):
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self._consumed_hits = 0
        self._consumed_misses = 0
        self._lock = threading.Lock()

    def _path(self, signature):
        return os.path.join(self.directory, signature + ".plan")

    def get(self, signature):
        """The stored plan for ``signature``, or ``None`` (a miss).

        Any I/O or decode failure — missing file, torn write from a
        crashed worker, version skew in pickled classes — degrades to a
        miss; the caller re-lowers and overwrites the entry.
        """
        try:
            with open(self._path(signature), "rb") as handle:
                plan = pickle.load(handle)
        except Exception:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return plan

    def put(self, signature, plan):
        """Store ``plan`` atomically; concurrent writers last-win with
        identical content, so the race is harmless."""
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle, temp = tempfile.mkstemp(dir=self.directory,
                                            suffix=".tmp")
            try:
                with os.fdopen(handle, "wb") as stream:
                    pickle.dump(plan, stream,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp, self._path(signature))
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory must never fail the
            # run itself; the plan simply is not shared.
            pass

    def consume_stats(self):
        """Hit/miss counts accumulated since the previous call.

        Returns ``None`` when nothing happened, so shard results only
        carry a stats payload when the plan cache was actually touched.
        """
        with self._lock:
            hits = self.hits - self._consumed_hits
            misses = self.misses - self._consumed_misses
            self._consumed_hits = self.hits
            self._consumed_misses = self.misses
        if not hits and not misses:
            return None
        return {"plan_cache_hits": hits, "plan_cache_misses": misses}
