"""Fig. 13 — manufactured dependencies under ``ptxas -O3``.

The xor scheme (a) is optimised away; the and-with-high-bit scheme (b)
survives.  Reproduced by assembling both chains and running the static
dependency analysis on the SASS.
"""

from repro._util import format_table
from repro.compiler import (assemble, dependent_load_pair,
                            sass_address_dependency_intact)
from repro.ptx.program import ThreadProgram

from _common import report


def _intact(scheme, opt_level):
    instructions, _ = dependent_load_pair("x", "y", scheme=scheme)
    sass = assemble(ThreadProgram(0, instructions), opt_level)
    return sass_address_dependency_intact(sass)


def test_fig13_dependency_schemes(benchmark):
    def analyse():
        return {(scheme, level): _intact(scheme, level)
                for scheme in ("xor", "and")
                for level in ("-O0", "-O3")}

    outcome = benchmark(analyse)
    rows = [[scheme,
             "intact" if outcome[(scheme, "-O0")] else "removed",
             "intact" if outcome[(scheme, "-O3")] else "removed",
             "removed" if scheme == "xor" else "intact"]
            for scheme in ("xor", "and")]
    report("fig13_dependencies",
           "fig13: manufactured address dependencies\n" +
           format_table(["scheme", "-O0", "-O3", "paper (-O3)"], rows))
    assert outcome[("xor", "-O3")] is False   # Fig. 13a: optimised
    assert outcome[("and", "-O3")] is True    # Fig. 13b: survives
    assert outcome[("xor", "-O0")] is True
    assert outcome[("and", "-O0")] is True
