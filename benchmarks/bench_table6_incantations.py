"""Table 6 — all 16 incantation combinations for coRR/lb/mp/sb on the
GTX Titan and Radeon HD 7970.

Reproduces the headline qualitative findings of Sec. 4.3:

* without incantations, Nvidia shows nothing (column 1);
* memory stress is necessary for inter-CTA weakness on the Titan
  (columns 1-8 are zero for lb/mp/sb);
* bank conflicts alone expose nothing (column 5);
* thread synchronisation boosts inter-CTA tests (col 10 vs 12);
* the AMD HD 7970 is weak even with no incantations at all.
"""

from repro._util import format_table
from repro.harness import ALL_COMBINATIONS, TABLE6, run_litmus
from repro.litmus import library

from _common import assert_shape, iterations, report

_TESTS = {
    "coRR": lambda: library.corr(placement="intra-cta"),
    "lb": lambda: library.lb(),
    "mp": lambda: library.mp(),
    "sb": lambda: library.sb(),
}
_CHIPS = {"Titan": "Nvidia", "HD7970": "AMD"}


def test_table6_incantations(benchmark):
    per_cell = iterations(1200)

    def sweep():
        measured = {}
        for chip, vendor in _CHIPS.items():
            for name, build in _TESTS.items():
                test = build()
                row = []
                for incantations in ALL_COMBINATIONS:
                    result = run_litmus(test, chip, incantations=incantations,
                                        iterations=per_cell, seed=3)
                    row.append(result.per_100k)
                measured[(chip, name)] = row
        return measured

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["table 6: incantation combinations (obs/100k; %d runs/cell)"
             % per_cell,
             "columns: 1..16 = 1 + 8*stress + 4*bankconf + 2*sync + 1*rand"]
    for (chip, name), row in measured.items():
        vendor = _CHIPS[chip]
        paper_row = TABLE6[(vendor, name)]
        lines.append("")
        lines.append("%s %s" % (chip, name))
        lines.append(format_table(
            ["col %d" % (i + 1) for i in range(16)],
            [["%.0f" % value for value in row],
             ["(%d)" % value for value in paper_row]]))
        for column in range(16):
            assert_shape(row[column], paper_row[column],
                         "table6/%s/%s/col%d" % (chip, name, column + 1),
                         iterations_per_cell=per_cell)
    report("table6_incantations", "\n".join(lines))

    # The Sec. 4.3 headline comparisons.
    titan_mp = measured[("Titan", "mp")]
    assert titan_mp[0] == 0, "no incantations -> nothing on Nvidia"
    assert all(measured[("Titan", idiom)][4] == 0 for idiom in _TESTS), \
        "bank conflicts alone expose nothing (column 5)"
    assert titan_mp[11] > 0, "stress+sync+random is the Nvidia sweet spot"
    assert measured[("HD7970", "lb")][0] > 0, \
        "the HD 7970 is weak without incantations"
