#!/usr/bin/env python
"""App-campaign perf benchmark: reference vs fast vs batch, tracked in
BENCH_apps.json.

Times the simulation engines on a pinned ``(scenario, chip)`` corpus of
application scenarios (:data:`repro.perf.APP_PINNED_CORPUS`;
``--corpus tiny`` for the CI smoke subset), prints the comparison table
and writes the machine-readable trajectory file.  Exits non-zero if

* the fast engine's *warm* (steady-state) launch rate falls below
  ``--min-speedup`` times the reference rate on any cell,
* the batch engine's warm rate falls below ``--min-batch-speedup``
  times the fast warm rate on any cell (skipped when numpy is missing),
* the corpus-wide warm geomean falls below ``--min-geomean``,
* any cell's same-seed outcome histograms or loss counts diverge
  between the reference and fast engines (the bit-identity contract;
  also property-tested in ``tests/test_apps_campaign.py``), or
* any cell's batch histogram fails the distribution-equivalence or
  loss-verdict cross-check against the fast engine.

Usage::

    python benchmarks/bench_perf_apps.py                    # pinned corpus
    python benchmarks/bench_perf_apps.py --corpus tiny \\
        --runs 200 --min-speedup 1.0 --output BENCH_apps.json
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ReproError  # noqa: E402
from repro.perf import (app_corpus_by_name, bench_apps,  # noqa: E402
                        render_app_table, summarize_apps, write_app_report)
from repro.perf.appbench import BENCH_APP_RUNS  # noqa: E402

#: Default output: the tracked trajectory file at the repo root.
DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_apps.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--corpus", default="pinned",
                        choices=("pinned", "tiny"),
                        help="cell set: pinned (default) or the CI-sized "
                             "tiny subset")
    parser.add_argument("--runs", type=int, default=BENCH_APP_RUNS,
                        help="launches per engine per cell (default %d — "
                             "one campaign shard, the unit the session "
                             "layer dispatches; the lockstep batch "
                             "engine sizes its chunks adaptively within "
                             "this width, so small values understate "
                             "its steady state)" % BENCH_APP_RUNS)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--intensity", type=float, default=100.0,
                        help="relaxation-intent multiplier (default 100, "
                             "the campaign default)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if any cell's warm speedup is below "
                             "this (default 1.0: the fast engine must "
                             "never lose to the reference engine)")
    parser.add_argument("--min-batch-speedup", type=float, default=1.0,
                        help="fail if any cell's batch warm throughput "
                             "is below this multiple of the fast warm "
                             "rate (default 1.0: batch must never lose "
                             "to fast; ignored when numpy is missing)")
    parser.add_argument("--min-geomean", type=float, default=0.0,
                        help="fail if the corpus-wide warm geomean is "
                             "below this (0 = no gate; local trajectory "
                             "runs use 3.0)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_apps.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    try:
        corpus = app_corpus_by_name(args.corpus)
        cells = bench_apps(corpus, runs=args.runs, seed=args.seed,
                           intensity=args.intensity, repeats=args.repeats)
    except ReproError as error:
        raise SystemExit(str(error))
    summary = summarize_apps(cells)
    print(render_app_table(cells))
    print("geomean fast speedup: %.2fx warm, %.2fx cold (min warm %.2fx)"
          % (summary["geomean_speedup_warm"],
             summary["geomean_speedup_cold"],
             summary["min_speedup_warm"]))
    if "geomean_batch_speedup_warm" in summary:
        print("geomean batch speedup over fast warm: %.2fx (min %.2fx)"
              % (summary["geomean_batch_speedup_warm"],
                 summary["min_batch_speedup_warm"]))
    else:
        print("batch engine not measured (numpy not installed)")
    write_app_report(args.output, cells, args.corpus, args.runs, args.seed,
                     extra={"repeats": args.repeats,
                            "intensity": args.intensity})
    print("wrote %s" % os.path.relpath(args.output))

    failures = []
    if not summary["all_identical"]:
        failures.append("engines diverged: some cell's histograms or loss "
                        "counts are not bit-identical")
    if summary.get("all_batch_equivalent") is False:
        failures.append("batch engine diverged: some cell failed the "
                        "distribution-equivalence/loss-verdict cross-check")
    slow = [cell for cell in cells if cell.speedup_warm < args.min_speedup]
    for cell in slow:
        failures.append("%s on %s: warm speedup %.2fx < %.2fx"
                        % (cell.scenario, cell.chip, cell.speedup_warm,
                           args.min_speedup))
    for cell in cells:
        if (cell.batch_speedup_warm is not None
                and cell.batch_speedup_warm < args.min_batch_speedup):
            failures.append("%s on %s: batch warm speedup %.2fx < %.2fx "
                            "of fast warm"
                            % (cell.scenario, cell.chip,
                               cell.batch_speedup_warm,
                               args.min_batch_speedup))
    if summary["geomean_speedup_warm"] < args.min_geomean:
        failures.append("warm geomean %.2fx < %.2fx"
                        % (summary["geomean_speedup_warm"],
                           args.min_geomean))
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
