#!/usr/bin/env python
"""Model-engine perf benchmark: reference vs fast, tracked in BENCH_model.json.

Times both model-checking engines on a pinned corpus — paper tests plus
deterministic length-6/7 diy cycles (:data:`repro.perf.MODEL_PINNED_CORPUS`;
``--corpus tiny`` for the CI smoke subset) — prints the comparison table
and writes the machine-readable trajectory file.  Exits non-zero if

* the fast engine's allowed-set time exceeds ``--min-speedup`` times the
  reference engine's on any cell, or
* any cell's allowed sets diverge between the engines (the parity
  contract; also property-tested in ``tests/test_model_compile.py``).

Usage::

    python benchmarks/bench_perf_model.py                  # pinned corpus
    python benchmarks/bench_perf_model.py --corpus tiny \\
        --repeats 3 --min-speedup 1.0 --output BENCH_model.json
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ReproError  # noqa: E402
from repro.perf import (bench_model_engines, model_corpus_by_name,  # noqa: E402
                        render_model_table, summarize_model,
                        write_model_report)

#: Default output: the tracked trajectory file at the repo root.
DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_model.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="pinned",
                        choices=("pinned", "tiny"),
                        help="cell set: pinned (default) or the CI-sized "
                             "tiny subset")
    parser.add_argument("--model", default="ptx",
                        help="axiomatic model to check against "
                             "(default ptx)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if any cell's speedup is below this "
                             "(default 1.0: the fast engine must never "
                             "lose to the reference engine)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_model.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    try:
        corpus = model_corpus_by_name(args.corpus)
        cells = bench_model_engines(corpus, model=args.model,
                                    repeats=args.repeats)
    except ReproError as error:
        raise SystemExit(str(error))
    summary = summarize_model(cells)
    print(render_model_table(cells))
    print("geomean speedup: %.2fx (min %.2fx, max %.2fx)"
          % (summary["geomean_speedup"], summary["min_speedup"],
             summary["max_speedup"]))
    write_model_report(args.output, cells, args.corpus, args.repeats,
                       extra={"model": args.model})
    print("wrote %s" % os.path.relpath(args.output))

    failures = []
    if not summary["all_identical"]:
        failures.append("engines diverged: some cell's allowed sets are "
                        "not identical")
    slow = [cell for cell in cells if cell.speedup < args.min_speedup]
    for cell in slow:
        failures.append("%s under %s: speedup %.2fx < %.2fx"
                        % (cell.test, cell.model, cell.speedup,
                           args.min_speedup))
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
