"""Fig. 11 — sl-future: the He-Yu lock lets a critical section read a
value written by the *next* critical section (isolation violation).

AMD columns are n/a (the OpenCL compiler's automatic fence placement
could not be avoided, Sec. 3.2).  Known calibration gap: our simulator
over-reports this test's rate by ~5-10x relative to the paper (the same
store-passes-load relaxation drives both dlb-lb and sl-future; hardware
evidently races the lock handoff less often) — see EXPERIMENTS.md.
"""

from repro.data import paper
from repro.litmus import library

from _common import iterations, reproduce_figure

_FENCED_ZEROS = {chip: 0 for chip in paper.NVIDIA_CHIPS}


def test_fig11_sl_future(benchmark):
    per_cell = max(iterations(), 8000)
    rows = [
        ("sl-future", library.build("sl-future"),
         {chip: value for chip, value in paper.FIG11_SL_FUTURE.items()
          if value is not None}),
        ("sl-future+fixed", library.sl_future(fixed=True), _FENCED_ZEROS),
    ]
    reproduce_figure(benchmark, "fig11_sl_future", rows, paper.NVIDIA_CHIPS,
                     iterations_per_cell=per_cell)
