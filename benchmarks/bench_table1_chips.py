"""Table 1 — the chip inventory, as simulator profiles."""

from repro._util import format_table
from repro.sim.chip import CHIPS

from _common import report

#: Table 1, verbatim.
TABLE1 = [
    ("Nvidia", "Tesla", "GeForce GTX 280", "GTX280", 2008),
    ("Nvidia", "Fermi", "GeForce GTX 540m", "GTX5", 2011),
    ("Nvidia", "Fermi", "Tesla C2075", "TesC", 2011),
    ("Nvidia", "Kepler", "GeForce GTX 660", "GTX6", 2012),
    ("Nvidia", "Kepler", "GeForce GTX Titan", "Titan", 2013),
    ("Nvidia", "Maxwell", "GeForce GTX 750", "GTX7", 2014),
    ("AMD", "TeraScale 2", "Radeon HD 6570", "HD6570", 2011),
    ("AMD", "GCN 1.0", "Radeon HD 7970", "HD7970", 2012),
]


def test_table1_chip_registry(benchmark):
    def verify():
        for vendor, architecture, name, short, year in TABLE1:
            profile = CHIPS[short]
            assert profile.vendor == vendor
            assert profile.architecture == architecture
            assert profile.name == name
            assert profile.year == year
        return len(TABLE1)

    count = benchmark(verify)
    rows = [[short, vendor, architecture, name, year,
             "weak" if CHIPS[short].is_weak else "strong"]
            for vendor, architecture, name, short, year in TABLE1]
    report("table1_chips", "table 1: tested chips\n" + format_table(
        ["short", "vendor", "architecture", "chip", "year", "profile"], rows))
    assert count == 8
