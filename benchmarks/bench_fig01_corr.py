"""Fig. 1 — coRR: read-read coherence violations across the seven chips.

Paper: observed several thousand times per 100k on Fermi/Kepler, never on
Maxwell or AMD.
"""

from repro.data import paper
from repro.litmus import library

from _common import reproduce_figure


def test_fig1_corr(benchmark):
    rows = [("coRR (intra-CTA)", library.build("coRR"), paper.FIG1_CORR)]
    reproduce_figure(benchmark, "fig01_coRR", rows, paper.FIGURE_CHIPS)
