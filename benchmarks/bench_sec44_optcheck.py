"""Sec. 4.4 — optcheck: catching compiler mischief in litmus binaries.

Reproduces (a) the clean path: every library test compiles at -O3 with
its specification intact; (b) the CUDA 5.5 volatile-load reordering being
caught; (c) -O0's instruction separation (why the paper compiles at -O3);
and (d) the paper's workflow downstream of optcheck — cleared binaries
feed the testing campaign — by running the cleared ``.cg`` library tests
through the conformance pipeline.  The campaign cells are exactly the
ones bench_sec54_soundness validates (same chips, seed and iteration
count), so whichever benchmark runs second is served from the shared
session's cache instead of re-simulating.
"""

from repro._util import format_table
from repro.api.conformance import run_soundness
from repro.compiler import assemble, optcheck
from repro.errors import OptcheckViolation
from repro.litmus import library
from repro.ptx import Addr, Ld, Loc, Reg
from repro.ptx.program import ThreadProgram

from _common import (LIBRARY_CG_TESTS, SOUNDNESS_CHIPS, SOUNDNESS_SEED,
                     report, session, soundness_runs)


def test_sec44_optcheck_pipeline(benchmark):
    def run_pipeline():
        clean = 0
        for name in sorted(library.PAPER_TESTS):
            test = library.build(name)
            for program in test.threads:
                optcheck(program, opt_level="-O3", cuda_version="6.0")
                clean += 1
        volatile_corr = ThreadProgram(0, [
            Ld(Reg("r1"), Addr(Loc("x")), volatile=True),
            Ld(Reg("r2"), Addr(Loc("x")), volatile=True)])
        caught = 0
        for seed in range(20):
            try:
                optcheck(volatile_corr, cuda_version="5.5", seed=seed)
            except OptcheckViolation:
                caught += 1
        clean60 = sum(
            1 for seed in range(20)
            if optcheck(volatile_corr, cuda_version="6.0", seed=seed))
        return clean, caught, clean60

    clean, caught, clean60 = benchmark.pedantic(run_pipeline, rounds=1,
                                                iterations=1)
    # -O0 separates adjacent accesses (the reason the paper uses -O3).
    corr_reader = library.build("coRR").threads[1]
    o0 = assemble(corr_reader, "-O0")
    indexes = [i for i, instr in enumerate(o0) if instr.is_memory_access]
    separation = indexes[1] - indexes[0]

    # Cleared binaries feed the campaign (the paper's Sec. 4 workflow):
    # the .cg library tests optcheck just cleared run through the
    # conformance pipeline on the shared memoising session — the same
    # cells as bench_sec54, so repeats are cache hits, not simulations.
    cleared = [library.build(name) for name in LIBRARY_CG_TESTS]
    conformance = run_soundness(cleared, SOUNDNESS_CHIPS,
                                iterations=soundness_runs(),
                                seed=SOUNDNESS_SEED, sim_session=session())

    report("sec44_optcheck", format_table(
        ["check", "result"],
        [["library threads passing optcheck at -O3 (CUDA 6.0)", clean],
         ["CUDA 5.5 volatile reorders caught (of 20 schedules)", caught],
         ["CUDA 6.0 schedules clean (of 20)", clean60],
         ["-O0 instruction separation between coRR loads", separation],
         ["cleared (test, chip) cells conforming to the PTX model",
          "%d/%d" % (sum(1 for c in conformance.cells if c.sound),
                     len(conformance.cells))]]))
    assert clean >= 50
    assert caught > 0
    assert clean60 == 20
    assert separation > 1
    assert conformance.ok, "\n".join(conformance.violation_lines())
