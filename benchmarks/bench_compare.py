#!/usr/bin/env python
"""Diff two BENCH_*.json perf reports and gate on speedup regressions.

Pairs the cells of an old and a new report of the same benchmark
(engine, model or apps), diffs every shared speedup column — the
machine-independent ratios, not the absolute rates — and exits non-zero
if any per-cell or geomean speedup dropped by more than ``--threshold``
(fractional; default 0.15).  CI's perf-smoke job runs this against the
tracked trajectory file at the repo root so a PR cannot silently erode
the fast/batch engine wins.

Usage::

    python benchmarks/bench_compare.py BENCH_engine.json /tmp/new.json
    python benchmarks/bench_compare.py old.json new.json --threshold 0.25
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ReproError  # noqa: E402
from repro.perf import (DEFAULT_THRESHOLD, compare_reports,  # noqa: E402
                        load_report, render_compare)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("old", help="baseline BENCH_*.json (e.g. the "
                                    "tracked file at the repo root)")
    parser.add_argument("new", help="freshly measured BENCH_*.json")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="tolerated fractional speedup drop before a "
                             "delta counts as a regression (default %.2f)"
                             % DEFAULT_THRESHOLD)
    args = parser.parse_args(argv)

    try:
        result = compare_reports(load_report(args.old),
                                 load_report(args.new))
    except ReproError as error:
        raise SystemExit(str(error))

    print("comparing %s -> %s (%s benchmark, threshold %.0f%%)"
          % (args.old, args.new, result.benchmark, args.threshold * 100))
    print(render_compare(result, threshold=args.threshold))
    if not result.deltas:
        print("no shared speedup metrics to compare", file=sys.stderr)
        return 1

    cell_regressions, geomean_regressions = result.regressions(
        args.threshold)
    for delta in cell_regressions:
        label = "/".join(str(part) for part in delta.key
                         if part is not None)
        print("FAIL: %s %s regressed %.2fx -> %.2fx (%.1f%% < -%.0f%%)"
              % (label, delta.metric, delta.old, delta.new,
                 (delta.ratio - 1.0) * 100.0, args.threshold * 100),
              file=sys.stderr)
    for metric, old, new in geomean_regressions:
        print("FAIL: geomean %s regressed %.2fx -> %.2fx"
              % (metric, old, new), file=sys.stderr)
    return 1 if (cell_regressions or geomean_regressions) else 0


if __name__ == "__main__":
    raise SystemExit(main())
