"""Fig. 3 — mp-L1: message passing with L1-targeting loads, fence sweep.

Paper: on the Tesla C2075 the weak outcome survives every fence scope —
no fence suffices under default CUDA compilation (``.ca`` loads).
"""

from repro.data import paper
from repro.litmus import library
from repro.ptx.types import Scope

from _common import reproduce_figure

_FENCES = [("no-op", None), ("membar.cta", Scope.CTA),
           ("membar.gl", Scope.GL), ("membar.sys", Scope.SYS)]


def test_fig3_mp_l1(benchmark):
    rows = [(label, library.mp_l1(fence=fence), paper.FIG3_MP_L1[label])
            for label, fence in _FENCES]
    reproduce_figure(benchmark, "fig03_mp_L1", rows, paper.NVIDIA_CHIPS)
