"""Table 4 — compilers and drivers: the toolchain configuration data,
exposed for reproducibility tooling (the SASS pipeline keys off the CUDA
version recorded here)."""

from repro._util import format_table
from repro.compiler import assemble, optcheck
from repro.data.paper import TABLE4_TOOLCHAINS
from repro.litmus import library

from _common import report


def test_table4_toolchains(benchmark):
    def verify():
        # Every Nvidia SDK version in Table 4 must drive the assembler.
        test = library.build("coRR")
        for chip, info in TABLE4_TOOLCHAINS.items():
            if chip.startswith("HD"):
                continue
            for program in test.threads:
                assemble(program, "-O3", cuda_version=info["sdk"])
        return len(TABLE4_TOOLCHAINS)

    count = benchmark(verify)
    rows = [[chip, info["sdk"], info["driver"], info["options"]]
            for chip, info in TABLE4_TOOLCHAINS.items()]
    report("table4_toolchains", "table 4: compilers and drivers used\n"
           + format_table(["chip", "SDK", "driver", "options"], rows))
    assert count == 7
    # The CUDA 5.5 machines (GTX5, TesC) are the ones exposed to the
    # volatile-reordering compiler bug; 6.0 machines are not (Sec. 4.4).
    assert TABLE4_TOOLCHAINS["GTX5"]["sdk"] == "5.5"
    assert TABLE4_TOOLCHAINS["Titan"]["sdk"] == "6.0"
