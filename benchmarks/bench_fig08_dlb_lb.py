"""Fig. 8 — dlb-lb: the deque's load-buffering bug (a steal reads a
later push).  The HD 6570 column is n/a: the TeraScale 2 OpenCL compiler
reorders the load past the CAS, invalidating the test.
"""

from repro.compiler import LOAD_CAS_REORDERED, effective_litmus
from repro.data import paper
from repro.litmus import library

from _common import reproduce_figure

_FENCED_ZEROS = {chip: 0 for chip in paper.FIGURE_CHIPS}
#: Chips where the test is hardware-valid (AMD TeraScale 2 is excluded by
#: the compiler bug, exactly as in the paper).
_VALID_CHIPS = [chip for chip in paper.FIGURE_CHIPS if chip != "HD6570"]


def test_fig8_dlb_lb(benchmark):
    rows = [
        ("dlb-lb", library.build("dlb-lb"),
         {chip: value for chip, value in paper.FIG8_DLB_LB.items()
          if value is not None}),
        ("dlb-lb+membar.gls", library.dlb_lb(fences=True), _FENCED_ZEROS),
    ]
    reproduce_figure(benchmark, "fig08_dlb_lb", rows, _VALID_CHIPS)


def test_fig8_hd6570_is_na(benchmark):
    """The n/a cell: compiling dlb-lb for Evergreen miscompiles it."""
    def check():
        _, transformations, valid = effective_litmus(
            library.build("dlb-lb"), "TeraScale 2")
        return transformations, valid

    transformations, valid = benchmark.pedantic(check, rounds=1, iterations=1)
    assert LOAD_CAS_REORDERED in transformations
    assert not valid
    assert paper.FIG8_DLB_LB["HD6570"] is None
