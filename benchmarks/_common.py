"""Shared helpers for the figure/table reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures on the
simulated chips, prints a paper-vs-measured table, appends it to
``benchmarks/_report/``, and asserts the qualitative *shape*: cells the
paper reports as zero stay (essentially) zero, cells with substantial
counts stay non-zero.  Absolute counts are normalised to obs/100k.

Iteration counts scale with the ``REPRO_ITERS`` environment variable
(default: a CI-sized fraction of the paper's 100k runs).
"""

import os

from repro.api import Session
from repro.harness import default_iterations

REPORT_DIR = os.path.join(os.path.dirname(__file__), "_report")

#: The benchmarks share one memoising Session so a cell that several
#: figures need (same test, chip, incantations, iterations, seed) is
#: simulated once per pytest run.  ``REPRO_JOBS`` shards cells across a
#: worker pool (process workers by default, since the simulator is
#: CPU-bound pure Python; ``REPRO_EXECUTOR=thread`` overrides);
#: ``REPRO_CACHE_DIR`` adds the on-disk tier so repeated benchmark
#: invocations skip simulation entirely.
_SESSION = None


def session():
    global _SESSION
    if _SESSION is None:
        from repro._util import env_int

        _SESSION = Session(
            backend="sim", jobs=env_int("REPRO_JOBS", 1),
            executor=os.environ.get("REPRO_EXECUTOR") or "process",
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)
    return _SESSION

#: The Sec. 5.4 soundness corpus shape shared by the conformance-driven
#: benchmarks (bench_sec44_optcheck feeds its cleared binaries through the
#: same cells bench_sec54_soundness validates, so the shared session's
#: cache serves the overlap once).  The chip sweep is the conformance
#: subsystem's canonical one — also the `repro-litmus soundness` default.
from repro.api.conformance import SOUNDNESS_CHIPS  # noqa: F401  (re-export)

LIBRARY_CG_TESTS = ["mp", "sb", "lb", "coRR", "dlb-lb", "cas-sl",
                    "sl-future", "exch-sl", "lb+membar.ctas",
                    "mp+membar.gls", "dlb-lb+membar.gls"]
SOUNDNESS_SEED = 17


def soundness_runs():
    """Sim iterations per soundness cell (env ``REPRO_SOUNDNESS_RUNS``)."""
    from repro._util import env_int

    return env_int("REPRO_SOUNDNESS_RUNS", 120)


#: Noise allowance (per 100k) for cells the paper reports as zero.
ZERO_CELL_SLACK = 25.0
#: Paper counts below this are too rare to demand at scaled iterations.
RARE_THRESHOLD = 80


def iterations(fallback=2500):
    """Per-cell iteration count (env ``REPRO_ITERS`` overrides)."""
    return default_iterations(fallback)


def report(name, text):
    """Print a reproduction table and persist it for EXPERIMENTS.md."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)


def run_cells(test, chips, iterations_per_cell, seed=0):
    """Run one test across chips under the paper's best incantations.

    Returns ``{chip short: SpecResult}`` (RunResult-compatible), served
    from the shared cached session.
    """
    campaign = session().campaign([test], chips, incantations="best",
                                  iterations=iterations_per_cell, seed=seed)
    return {chip: campaign.get(test.name, chip) for chip in chips}


def assert_shape(measured_per_100k, paper_value, context="",
                 iterations_per_cell=None):
    """The reproduction contract: zero cells stay zero, substantial cells
    stay non-zero.  ``paper_value=None`` (the paper's n/a) checks nothing.

    When ``iterations_per_cell`` is given, non-zero is only demanded if
    the paper's rate would statistically yield several counts at this
    sample size (>= 8 expected events); otherwise the coarse
    ``RARE_THRESHOLD`` applies.
    """
    if paper_value is None:
        return
    if paper_value == 0:
        slack = ZERO_CELL_SLACK
        if iterations_per_cell:
            # At small sample sizes a single stray count must not fail.
            slack = max(slack, 1.5 * 100000.0 / iterations_per_cell)
        assert measured_per_100k <= slack, (
            "%s: paper reports 0 but measured %.0f/100k"
            % (context, measured_per_100k))
        return
    if iterations_per_cell:
        expected_counts = paper_value * iterations_per_cell / 100000.0
        if expected_counts < 8:
            return
    elif paper_value < RARE_THRESHOLD:
        return
    assert measured_per_100k > 0, (
        "%s: paper reports %d/100k but measured none"
        % (context, paper_value))


def comparison_rows(results, paper_row, label):
    """Build printable rows: measured vs paper for one test variant."""
    cells = [label]
    for chip, result in results.items():
        published = paper_row.get(chip, "n/a")
        if published is None:
            cells.append("n/a (paper n/a)")
        else:
            cells.append("%.0f (paper %s)" % (result.per_100k, published))
    return cells


def reproduce_figure(benchmark, figure_id, rows, chips, seed=0,
                     iterations_per_cell=None):
    """Reproduce one figure: ``rows`` is a list of (label, test, paper
    dict) triples.  Runs every cell, prints/persists the comparison
    table, asserts the shape, and returns the results.
    """
    from repro._util import format_table

    per_cell = iterations_per_cell or iterations()

    def run():
        return {label: run_cells(test, chips, per_cell, seed=seed)
                for label, test, _ in rows}

    all_results = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = [comparison_rows(all_results[label], paper_row, label)
                  for label, _, paper_row in rows]
    table = format_table(["obs/100k"] + list(chips), table_rows)
    report(figure_id, "%s (iterations per cell: %d)\n%s"
           % (figure_id, per_cell, table))
    for label, _, paper_row in rows:
        for chip in chips:
            assert_shape(all_results[label][chip].per_100k,
                         paper_row.get(chip), "%s/%s/%s"
                         % (figure_id, label, chip),
                         iterations_per_cell=per_cell)
    return all_results
