"""Fig. 4 — coRR-L2-L1: mixing cache operators within coRR, fence sweep.

Paper: on the Tesla C2075 no fence guarantees that updated values are
read reliably from the L1, even after an updated value was read from the
L2.
"""

from repro.data import paper
from repro.litmus import library
from repro.ptx.types import Scope

from _common import reproduce_figure

_FENCES = [("no-op", None), ("membar.cta", Scope.CTA),
           ("membar.gl", Scope.GL), ("membar.sys", Scope.SYS)]


def test_fig4_corr_l2_l1(benchmark):
    rows = [(label, library.corr_l2_l1(fence=fence),
             paper.FIG4_CORR_L2_L1[label])
            for label, fence in _FENCES]
    reproduce_figure(benchmark, "fig04_coRR_L2_L1", rows, paper.NVIDIA_CHIPS)
