"""Ablation: what each ingredient of the PTX model buys (DESIGN.md).

Two design choices distinguish the paper's model from textbook RMO:

1. **per-scope stratification** (Fig. 16): fences only constrain pairs
   within their scope.  Ablating it (one global fence level = unscoped
   RMO) flips the verdict on every test that communicates across CTAs
   under ``membar.cta`` — the exact unsoundness of the Sorensen model.
2. **the load-load hazard exemption** (Fig. 15 line 3): excluding
   read-read pairs from SC-per-location.  Ablating it (full
   ``po-loc``) forbids coRR, which Fermi/Kepler exhibit ~10k/100k.

The ablation sweeps a diy-generated family and counts verdict flips.
"""

from repro._util import format_table
from repro.diy import SAME_CTA, default_pool, generate_tests
from repro.litmus import library
from repro.model.models import AxiomaticModel, PTX_CAT, RMO_CAT, ptx_model
from repro.ptx.types import Scope

from _common import report

#: PTX model with the load-load hazard exemption removed (full coherence).
PTX_NO_LLH_CAT = PTX_CAT.replace(
    "let po-loc-llh =\n",
    "").replace(
    "let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)",
    "let po-loc-llh = po-loc")


def test_ablation_scoped_fences(benchmark):
    ptx = ptx_model()
    unscoped = AxiomaticModel("rmo-unscoped", RMO_CAT)
    pool = default_pool(scopes=("dev", SAME_CTA), fences=(Scope.CTA, Scope.GL))
    family = generate_tests(pool, max_length=4, max_tests=150)
    family.append(library.build("lb+membar.ctas"))

    def sweep():
        flips = []
        for test in family:
            ptx_verdict = ptx.allows_condition(test)
            rmo_verdict = unscoped.allows_condition(test)
            if ptx_verdict != rmo_verdict:
                flips.append((test.name, ptx_verdict, rmo_verdict))
        return flips

    flips = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name, "Allow" if p else "Forbid", "Allow" if r else "Forbid"]
            for name, p, r in flips[:15]]
    report("ablation_scoped_fences",
           "ablation: per-scope fences vs one global fence level\n"
           "verdict flips: %d / %d tests (first 15 shown)\n%s"
           % (len(flips), len(family),
              format_table(["test", "PTX (scoped)", "RMO (unscoped)"], rows)))
    assert flips, "scoping must matter on a cta-fence family"
    # Every flip is PTX-allows / unscoped-forbids: scoped fences are
    # strictly weaker, never stronger.
    assert all(p and not r for _, p, r in flips)
    assert any(name == "lb+membar.ctas" for name, _, _ in flips)


def test_ablation_load_load_hazard(benchmark):
    ptx = ptx_model()
    no_llh = AxiomaticModel("ptx-no-llh", PTX_NO_LLH_CAT)

    def verdicts():
        corr = library.build("coRR")
        corr_l2l1 = library.build("coRR-L2-L1")
        mp = library.build("mp")
        return {
            "coRR": (ptx.allows_condition(corr),
                     no_llh.allows_condition(corr)),
            "coRR-L2-L1": (ptx.allows_condition(corr_l2l1),
                           no_llh.allows_condition(corr_l2l1)),
            "mp": (ptx.allows_condition(mp), no_llh.allows_condition(mp)),
        }

    outcome = benchmark(verdicts)
    rows = [[name, "Allow" if a else "Forbid", "Allow" if b else "Forbid"]
            for name, (a, b) in outcome.items()]
    report("ablation_llh",
           "ablation: the load-load hazard exemption (Fig. 15 line 3)\n"
           + format_table(["test", "PTX (llh)", "PTX without llh"], rows))
    # With the exemption, coRR is allowed (as observed on Fermi/Kepler);
    # without it the model would wrongly forbid the observation.
    assert outcome["coRR"] == (True, False)
    assert outcome["coRR-L2-L1"] == (True, False)
    assert outcome["mp"] == (True, True)  # unrelated tests unaffected
