#!/usr/bin/env python
"""Engine perf benchmark: reference vs fast vs batch (BENCH_engine.json).

Times the simulation engines on a pinned ``(test, chip)`` corpus
(:data:`repro.perf.PINNED_CORPUS`; ``--corpus tiny`` for the CI smoke
subset), prints the comparison table and writes the machine-readable
trajectory file.  Exits non-zero if

* the fast engine's *warm* (steady-state) rate falls below
  ``--min-speedup`` times the reference rate on any cell,
* the batch engine's warm rate falls below ``--min-batch-speedup``
  times the fast warm rate on any cell (skipped when numpy is not
  installed),
* any cell's same-seed histograms diverge between the reference and
  fast engines (the bit-identity contract; also property-tested in
  ``tests/test_sim_compile.py``), or
* any cell's batch histogram fails the distribution-equivalence
  cross-check against the fast engine (``tests/test_sim_batch.py``
  holds the same contract at higher power).

Usage::

    python benchmarks/bench_perf_engine.py                 # pinned corpus
    python benchmarks/bench_perf_engine.py --corpus tiny \\
        --iterations 500 --min-speedup 1.0 --output BENCH_engine.json
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ReproError  # noqa: E402
from repro.perf import (bench_engines, corpus_by_name, render_table,  # noqa: E402
                        summarize, write_report)

#: Default output: the tracked trajectory file at the repo root.
DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_engine.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="pinned",
                        choices=("pinned", "tiny"),
                        help="cell set: pinned (default) or the CI-sized "
                             "tiny subset")
    parser.add_argument("--iterations", type=int, default=25000,
                        help="iterations per engine per cell (default "
                             "25000 — one full production shard, the "
                             "lockstep batch width campaign runs "
                             "actually execute; smaller values "
                             "understate the batch engine's steady "
                             "state)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if any cell's warm speedup is below "
                             "this (default 1.0: the fast engine must "
                             "never lose to the reference engine)")
    parser.add_argument("--min-batch-speedup", type=float, default=1.0,
                        help="fail if any cell's batch warm throughput "
                             "is below this multiple of the fast warm "
                             "rate (default 1.0: batch must never lose "
                             "to fast; ignored when numpy is missing)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_engine.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    try:
        corpus = corpus_by_name(args.corpus)
        cells = bench_engines(corpus, iterations=args.iterations,
                              seed=args.seed, repeats=args.repeats)
    except ReproError as error:
        raise SystemExit(str(error))
    summary = summarize(cells)
    print(render_table(cells))
    print("geomean fast speedup: %.2fx warm, %.2fx cold (min warm %.2fx)"
          % (summary["geomean_speedup_warm"],
             summary["geomean_speedup_cold"],
             summary["min_speedup_warm"]))
    if "geomean_batch_speedup_warm" in summary:
        print("geomean batch speedup over fast warm: %.2fx (min %.2fx)"
              % (summary["geomean_batch_speedup_warm"],
                 summary["min_batch_speedup_warm"]))
    else:
        print("batch engine not measured (numpy not installed)")
    write_report(args.output, cells, args.corpus, args.iterations,
                 args.seed, extra={"repeats": args.repeats})
    print("wrote %s" % os.path.relpath(args.output))

    failures = []
    if not summary["all_identical"]:
        failures.append("engines diverged: some cell's histograms are not "
                        "bit-identical")
    if summary.get("all_batch_equivalent") is False:
        failures.append("batch engine diverged: some cell's histogram "
                        "failed the distribution-equivalence cross-check")
    slow = [cell for cell in cells if cell.speedup_warm < args.min_speedup]
    for cell in slow:
        failures.append("%s on %s: warm speedup %.2fx < %.2fx"
                        % (cell.test, cell.chip, cell.speedup_warm,
                           args.min_speedup))
    for cell in cells:
        if (cell.batch_speedup_warm is not None
                and cell.batch_speedup_warm < args.min_batch_speedup):
            failures.append("%s on %s: batch warm speedup %.2fx < %.2fx "
                            "of fast warm"
                            % (cell.test, cell.chip,
                               cell.batch_speedup_warm,
                               args.min_batch_speedup))
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
