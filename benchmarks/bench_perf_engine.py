#!/usr/bin/env python
"""Engine perf benchmark: reference vs fast, tracked in BENCH_engine.json.

Times both simulation engines on a pinned ``(test, chip)`` corpus
(:data:`repro.perf.PINNED_CORPUS`; ``--corpus tiny`` for the CI smoke
subset), prints the comparison table and writes the machine-readable
trajectory file.  Exits non-zero if

* the fast engine's *warm* (steady-state) rate falls below
  ``--min-speedup`` times the reference rate on any cell, or
* any cell's same-seed histograms diverge between the engines (the
  bit-identity contract; also property-tested in
  ``tests/test_sim_compile.py``).

Usage::

    python benchmarks/bench_perf_engine.py                 # pinned corpus
    python benchmarks/bench_perf_engine.py --corpus tiny \\
        --iterations 500 --min-speedup 1.0 --output BENCH_engine.json
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ReproError  # noqa: E402
from repro.perf import (bench_engines, corpus_by_name, render_table,  # noqa: E402
                        summarize, write_report)

#: Default output: the tracked trajectory file at the repo root.
DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_engine.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="pinned",
                        choices=("pinned", "tiny"),
                        help="cell set: pinned (default) or the CI-sized "
                             "tiny subset")
    parser.add_argument("--iterations", type=int, default=2000,
                        help="iterations per engine per cell (default 2000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if any cell's warm speedup is below "
                             "this (default 1.0: the fast engine must "
                             "never lose to the reference engine)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_engine.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    try:
        corpus = corpus_by_name(args.corpus)
        cells = bench_engines(corpus, iterations=args.iterations,
                              seed=args.seed, repeats=args.repeats)
    except ReproError as error:
        raise SystemExit(str(error))
    summary = summarize(cells)
    print(render_table(cells))
    print("geomean speedup: %.2fx warm, %.2fx cold (min warm %.2fx)"
          % (summary["geomean_speedup_warm"],
             summary["geomean_speedup_cold"],
             summary["min_speedup_warm"]))
    write_report(args.output, cells, args.corpus, args.iterations,
                 args.seed, extra={"repeats": args.repeats})
    print("wrote %s" % os.path.relpath(args.output))

    failures = []
    if not summary["all_identical"]:
        failures.append("engines diverged: some cell's histograms are not "
                        "bit-identical")
    slow = [cell for cell in cells if cell.speedup_warm < args.min_speedup]
    for cell in slow:
        failures.append("%s on %s: warm speedup %.2fx < %.2fx"
                        % (cell.test, cell.chip, cell.speedup_warm,
                           args.min_speedup))
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
