"""Fig. 7 — dlb-mp: the deque's message-passing bug (a stolen task is
stale).  Adding the (+) fences forbids the behaviour on every chip."""

from repro.data import paper
from repro.litmus import library

from _common import iterations, reproduce_figure

#: Zeros everywhere once fenced (the paper's "(+) lines forbid this").
_FENCED_ZEROS = {chip: 0 for chip in paper.FIGURE_CHIPS}


def test_fig7_dlb_mp(benchmark):
    # The bug fires at 4-65/100k on hardware: use a deeper run per cell.
    per_cell = max(iterations(), 8000)
    rows = [
        ("dlb-mp", library.build("dlb-mp"), paper.FIG7_DLB_MP),
        ("dlb-mp+membar.gls", library.dlb_mp(fences=True), _FENCED_ZEROS),
    ]
    reproduce_figure(benchmark, "fig07_dlb_mp", rows, paper.FIGURE_CHIPS,
                     iterations_per_cell=per_cell)
