"""Benchmark package marker: puts this directory on sys.path so the
bench modules can import their shared ``_common`` helpers."""
