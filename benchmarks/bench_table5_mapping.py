"""Table 5 — the CUDA-to-PTX mapping, validated by lowering each CUDA
construct and checking the produced PTX opcode."""

from repro._util import format_table
from repro.compiler import (AtomicCas, AtomicExchange, AtomicIncrement, Cond,
                            Kernel, Load, Store, TABLE5, Threadfence, While,
                            compile_kernel)

from _common import report

_CASES = [
    ("atomicCAS", Kernel([AtomicCas("v", "m", 0, 1)]), "atom.cas"),
    ("atomicExch", Kernel([AtomicExchange("v", "m", 0)]), "atom.exch"),
    ("__threadfence", Kernel([Threadfence()]), "membar.gl"),
    ("__threadfence_block", Kernel([Threadfence(block=True)]), "membar.cta"),
    ("atomicAdd(...,1)", Kernel([AtomicIncrement("v", "c")]), "atom.inc"),
    ("store to global int", Kernel([Store("x", 1)]), "st.cg"),
    ("load from global int", Kernel([Load("v", "x")]), "ld.cg"),
    ("store to volatile int", Kernel([Store("x", 1, volatile=True)]),
     "st.volatile"),
    ("load from volatile int", Kernel([Load("v", "x", volatile=True)]),
     "ld.volatile"),
    ("control flow (while, if)",
     Kernel([Load("v", "x"),
             While(Cond("v", "ne", 0), body=(Load("v", "x"),))]),
     "jumps & predicated instructions"),
]


def test_table5_mapping(benchmark):
    def lower_all():
        produced = {}
        for cuda_construct, kernel, _ in _CASES:
            program = compile_kernel(kernel, 0)
            text = "\n".join(str(i) for i in program)
            produced[cuda_construct] = text
        return produced

    produced = benchmark(lower_all)
    rows = []
    for cuda_construct, _, expected_ptx in _CASES:
        text = produced[cuda_construct]
        if expected_ptx == "jumps & predicated instructions":
            ok = "bra" in text and "@p" in text
        else:
            ok = expected_ptx in text
        assert ok, (cuda_construct, text)
        assert TABLE5[cuda_construct] == expected_ptx
        rows.append([cuda_construct, expected_ptx, "ok"])
    report("table5_mapping", "table 5: CUDA to PTX mapping (CUDA 5.5)\n"
           + format_table(["CUDA", "PTX", ""], rows))
