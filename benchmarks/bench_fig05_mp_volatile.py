"""Fig. 5 — mp-volatile: ``.volatile`` does not restore SC in shared
memory on Fermi/Kepler, contrary to the PTX manual."""

from repro.data import paper
from repro.litmus import library

from _common import reproduce_figure


def test_fig5_mp_volatile(benchmark):
    rows = [("mp-volatile (intra-CTA, shared)", library.build("mp-volatile"),
             paper.FIG5_MP_VOLATILE)]
    reproduce_figure(benchmark, "fig05_mp_volatile", rows, paper.NVIDIA_CHIPS)
