"""Figs. 15 & 16 — the PTX model in .cat, executed herd-style.

Checks the model text compiles, reproduces the paper's allowed/forbidden
verdicts over the library, and benchmarks herd-style checking throughput.
"""

from repro._util import format_table
from repro.litmus import library
from repro.model.cat import CatModel
from repro.model.models import PTX_CAT, RMO_CORE_CAT, RMO_PER_SCOPE_CAT, ptx_model

from _common import report

#: The paper's verdicts (allowed weak outcome?) for the library tests.
EXPECTED = {
    "coRR": True, "mp": True, "mp+membar.gls": False, "mp-fig14": False,
    "sb": True, "SB-fig12": True, "lb": True, "lb+membar.ctas": True,
    "lb+membar.gls": False, "mp-volatile": True,
    "dlb-mp": True, "dlb-mp+membar.gls": False,
    "dlb-lb": True, "dlb-lb+membar.gls": False,
    "cas-sl": True, "cas-sl+membar.gls": False, "exch-sl": True,
    "sl-future": True, "sl-future+fixed": False,
}


def test_fig15_16_ptx_model(benchmark):
    model = ptx_model()

    def check_library():
        return {name: model.allows_condition(library.build(name))
                for name in EXPECTED}

    verdicts = benchmark(check_library)
    rows = [[name, "Allow" if verdicts[name] else "Forbid",
             "Allow" if EXPECTED[name] else "Forbid",
             "ok" if verdicts[name] == EXPECTED[name] else "MISMATCH"]
            for name in sorted(EXPECTED)]
    report("fig15_16_model",
           "figs 15-16: PTX model (RMO per scope) verdicts\n" +
           format_table(["test", "model", "paper", ""], rows))
    assert verdicts == EXPECTED


def test_fig15_16_cat_structure(benchmark):
    def compile_model():
        return CatModel(PTX_CAT)

    model = benchmark(compile_model)
    # Fig. 15 contributes sc-per-loc-llh and no-thin-air; Fig. 16 the
    # three per-scope constraints; plus the RMW atomicity axiom.
    assert set(model.check_names) == {
        "sc-per-loc-llh", "no-thin-air", "cta-constraint", "gl-constraint",
        "sys-constraint", "atomicity"}
    assert PTX_CAT.startswith(RMO_CORE_CAT)
    assert RMO_PER_SCOPE_CAT in PTX_CAT
