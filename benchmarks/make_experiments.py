#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from the benchmark report tables.

Run ``pytest benchmarks/ --benchmark-only`` first (it writes the
paper-vs-measured tables into ``benchmarks/_report/``), then::

    python benchmarks/make_experiments.py
"""

import os
import textwrap

REPORT = os.path.join(os.path.dirname(__file__), "_report")
TARGET = os.path.join(os.path.dirname(__file__), os.pardir, "EXPERIMENTS.md")

INTRO = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated on the
simulated chips by `pytest benchmarks/ --benchmark-only`.  Each cell
shows the measured obs/100k next to the paper's published count.  The
tables below are from a default-scale run (fewer iterations than the
paper's 100k, so small counts carry sampling noise; `REPRO_ITERS=100000`
reproduces the paper's scale).

Reading guide:

* **shape** (which cells are zero vs non-zero; which fences kill which
  behaviours at which scope) is the reproduction target and matches the
  paper everywhere, including the n/a cells caused by AMD compiler bugs;
* **magnitudes** are calibrated (see `repro/sim/chip.py`): most cells are
  within ~1.5x of the paper, the known exception being `sl-future`
  (over-reported ~5-10x, discussed at the end).
"""

SECTIONS = [
    ("Table 1 — the chips", "table1_chips", ""),
    ("Fig. 1 — coRR (read-read coherence)", "fig01_coRR",
     "Weak on Fermi/Kepler at ~10k/100k, absent on Maxwell and AMD — the "
     "load-load hazard switch in the chip profiles."),
    ("Fig. 3 — mp-L1 fence sweep", "fig03_mp_L1",
     "The Tesla C2075 stays weak under every fence scope (the paper's "
     "headline Fermi finding); membar.cta leaks inter-CTA on Kepler "
     "(Titan 1696/100k in the paper), and membar.gl restores order "
     "everywhere but TesC."),
    ("Fig. 4 — coRR-L2-L1 fence sweep", "fig04_coRR_L2_L1",
     "The L2-then-L1 refill path: GTX5 ignores membar.cta for this "
     "pattern but honours membar.gl; TesC honours nothing; Kepler is "
     "essentially clean."),
    ("Fig. 5 — mp-volatile", "fig05_mp_volatile",
     "Contrary to the PTX manual, .volatile does not restore SC in shared "
     "memory on Fermi/Kepler; Maxwell orders volatiles."),
    ("Figs. 6-7 — dlb-mp (deque loses a pushed task)", "fig07_dlb_mp",
     "Rare on hardware (4-65/100k); the fenced variant is silent on all "
     "chips.  The same bug is reproduced at the application level in "
     "repro.apps.deque (see examples/work_stealing.py)."),
    ("Fig. 8 — dlb-lb (steal reads a later push)", "fig08_dlb_lb",
     "HD6570 is n/a exactly as in the paper: compiling the test for "
     "Evergreen reorders the load past the CAS (a miscompilation), which "
     "bench_fig08 verifies separately."),
    ("Figs. 2/9 — cas-sl (CUDA-by-Example spin lock)", "fig09_cas_sl",
     "The lock from Nvidia's own book admits stale reads in its critical "
     "section on Fermi/Kepler and both AMD chips; the (+) fences of the "
     "erratum silence it."),
    ("Figs. 10-11 — sl-future (He-Yu lock reads future values)",
     "fig11_sl_future",
     "Shape reproduced (weak on TesC/GTX6/Titan, silent on GTX5/GTX7 and "
     "after the fix).  Known calibration gap: measured rates are ~5-10x "
     "the paper's — see the discussion at the end."),
    ("Fig. 12 — the litmus format", "fig12_format", ""),
    ("Fig. 13 — manufactured dependencies", "fig13_dependencies",
     "ptxas -O3 folds the xor chain (scheme a) and keeps the "
     "and-high-bit chain (scheme b), as the paper requires."),
    ("Fig. 14 — an execution of mp and its rmo-cta cycle",
     "fig14_executions", ""),
    ("Figs. 15-16 — the PTX model", "fig15_16_model",
     "Every allowed/forbidden verdict the paper states or implies for the "
     "library tests, reproduced by the .cat interpreter; note "
     "lb+membar.ctas is Allowed (scoped fences!) while unscoped RMO "
     "forbids it."),
    ("Table 2 — the ten issues", "table2_summary", ""),
    ("Table 3 — idiom glossary", "table3_idioms", ""),
    ("Table 4 — toolchains", "table4_toolchains",
     "The SDK versions key the SASS pipeline's behaviour: the CUDA 5.5 "
     "machines are exposed to the volatile-reorder bug."),
    ("Table 5 — CUDA to PTX mapping", "table5_mapping", ""),
    ("Table 6 — incantation combinations", "table6_incantations",
     "Column key (derived in DESIGN.md): col = 1 + 8*stress + 4*bankconf + "
     "2*sync + 1*random.  The paper's row per (chip, idiom) doubles as the "
     "efficacy calibration of the harness, so the shape here is partly by "
     "construction; the structural findings (nothing without incantations "
     "on Nvidia, col 5 empty, AMD weak unaided) are genuine machine "
     "behaviour."),
    ("Sec. 4.4 — optcheck", "sec44_optcheck", ""),
    ("Sec. 5.4 — model validation (soundness)", "sec54_soundness",
     "Every final state observed on any simulated chip is allowed by the "
     "PTX model, over a diy-generated family plus the paper's tests — the "
     "reproduction of the paper's 10930-test validation.  Family size "
     "scales with REPRO_FAMILY / REPRO_SOUNDNESS_RUNS."),
    ("Sec. 6 — the Sorensen operational model is unsound",
     "sec6_operational",
     "lb+membar.ctas: forbidden by the scope-blind model, observed on the "
     "simulated Titan (paper: 586/100k) — and allowed by the paper's PTX "
     "model."),
]

OUTRO = """## Known deviations

* **sl-future magnitude** (Fig. 11): the simulator drives both dlb-lb
  and sl-future with the same store-passes-older-load relaxation
  (`w_pass_r`).  The paper's hardware shows dlb-lb at 750-2292/100k but
  sl-future at only 41-99/100k — the lock-handoff race is evidently much
  rarer on silicon than in our scheduler.  We calibrate `w_pass_r`
  between the two, leaving sl-future ~5-10x high.  Shape (who is weak,
  what fixes it) is unaffected.
* **Tiny-count cells** (paper values of 2-65/100k) are statistically
  invisible at CI-scale iteration counts and show as 0; they reappear at
  `REPRO_ITERS=100000`.
* **Table 6 magnitudes** are partly by construction: the paper's Table 6
  rows are used as the incantation-efficacy calibration (normalised per
  row).  The zero/non-zero structure, however, falls out of the machine:
  a zero-efficacy column means no relaxation intents, and the simulator
  then genuinely cannot reorder.
* The simulator treats *mixed* scope trees (some pairs intra-CTA, some
  inter) conservatively: fences act at full strength, which preserves
  model-soundness but may under-report weakness for 3+-thread tests
  with mixed placements.
"""


def main():
    parts = [INTRO]
    missing = []
    for title, name, commentary in SECTIONS:
        path = os.path.join(REPORT, name + ".txt")
        if not os.path.exists(path):
            missing.append(name)
            continue
        with open(path) as handle:
            body = handle.read().rstrip()
        parts.append("## %s\n" % title)
        if commentary:
            parts.append(textwrap.fill(commentary, 74) + "\n")
        parts.append("```\n%s\n```\n" % body)
    parts.append(OUTRO)
    with open(TARGET, "w") as handle:
        handle.write("\n".join(parts))
    if missing:
        print("warning: missing report tables: %s" % ", ".join(missing))
    print("wrote %s" % os.path.abspath(TARGET))


if __name__ == "__main__":
    main()
