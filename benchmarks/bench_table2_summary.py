"""Table 2 — the ten issues the study revealed, re-derived end to end.

Each row of Table 2 is re-established by the corresponding machinery:
simulator observations, model verdicts, app clients, or compiler checks.
"""

from repro._util import format_table
from repro.apps import lb_scenario, mp_scenario
from repro.compiler import (FENCE_REMOVED, LOAD_CAS_REORDERED,
                            compile_opencl_thread, effective_litmus)
from repro.errors import OptcheckViolation
from repro.harness import run_paper_config
from repro.litmus import library
from repro.ptx import Addr, Ld, Loc, Reg
from repro.ptx.program import ThreadProgram
from repro.ptx.types import Scope
from repro.compiler import optcheck

from _common import iterations, report


def _observed(name, chip, iters, seed=0):
    return run_paper_config(library.build(name), chip,
                            iterations=iters, seed=seed).observations > 0


def test_table2_summary(benchmark):
    iters = max(iterations(), 6000)

    def derive():
        rows = []
        # Fermi/Kepler: coRR.
        rows.append(("Fermi/Kepler", "coRR",
                     _observed("coRR", "TesC", iters)
                     and _observed("coRR", "Titan", iters)))
        # Fermi: fences do not restore mp-L1 / coRR-L2-L1 orderings.
        mp_l1_sys = run_paper_config(library.mp_l1(fence=Scope.SYS), "TesC",
                                     iterations=max(iters, 20000), seed=1)
        corr_l21_sys = run_paper_config(library.corr_l2_l1(fence=Scope.SYS),
                                        "TesC", iterations=iters, seed=1)
        rows.append(("Fermi (TesC)", "mp-L1, coRR-L2-L1 under membar.sys",
                     mp_l1_sys.observations > 0 and corr_l21_sys.observations > 0))
        # PTX ISA: volatile does not restore SC.
        rows.append(("PTX ISA", "mp-volatile",
                     _observed("mp-volatile", "GTX5", iters)))
        # GPU Computing Gems: fenceless deque loses tasks.
        lost_mp, _ = mp_scenario("Titan", fenced=False, runs=800, seed=1,
                                 intensity=60.0)
        lost_lb, _ = lb_scenario("Titan", fenced=False, runs=800, seed=1,
                                 intensity=60.0)
        rows.append(("GPU Computing Gems", "dlb-lb, dlb-mp",
                     lost_mp > 0 and lost_lb > 0))
        # CUDA by Example: fenceless lock reads stale values.
        rows.append(("CUDA by Example", "cas-sl",
                     _observed("cas-sl", "Titan", max(iters, 20000))))
        # Stuart-Owens lock.
        rows.append(("Stuart-Owens lock", "exch-sl",
                     _observed("exch-sl", "Titan", max(iters, 20000))))
        # He-Yu lock: future values.
        rows.append(("He-Yu lock", "sl-future",
                     _observed("sl-future", "Titan", iters)))
        # CUDA 5.5: compiler reorders volatile loads (coRR).
        volatile_corr = ThreadProgram(0, [
            Ld(Reg("r1"), Addr(Loc("x")), volatile=True),
            Ld(Reg("r2"), Addr(Loc("x")), volatile=True)])
        caught = False
        for seed in range(12):
            try:
                optcheck(volatile_corr, cuda_version="5.5", seed=seed)
            except OptcheckViolation:
                caught = True
        rows.append(("CUDA 5.5", "coRR volatile-load reorder", caught))
        # AMD GCN 1.0: compiler removes fences between loads (mp).
        gcn = compile_opencl_thread(
            library.mp(fence0=Scope.GL, fence1=Scope.GL).threads[1], "GCN 1.0")
        rows.append(("AMD GCN 1.0", "mp fence removal",
                     FENCE_REMOVED in gcn.transformations))
        # AMD TeraScale 2: compiler reorders load and CAS (dlb-lb).
        _, transformations, valid = effective_litmus(
            library.build("dlb-lb"), "TeraScale 2")
        rows.append(("AMD TeraScale 2", "dlb-lb load/CAS reorder",
                     LOAD_CAS_REORDERED in transformations and not valid))
        return rows

    rows = benchmark.pedantic(derive, rounds=1, iterations=1)
    table = format_table(
        ["affected", "litmus tests / issue", "reproduced"],
        [[who, what, "yes" if ok else "NO"] for who, what, ok in rows])
    report("table2_summary", "table 2: the ten issues, re-derived\n" + table)
    assert len(rows) == 10
    assert all(ok for _, _, ok in rows)
