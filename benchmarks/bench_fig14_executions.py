"""Fig. 14 — candidate executions of the mp test and the rmo-cta cycle.

The weak candidate of the intra-CTA mp (membar.cta between the writes,
membar.gl between the reads) exhibits a cycle in ``rmo-cta``; the model
forbids it by the cta-constraint (Sec. 5.3).
"""

from repro.litmus import library
from repro.model.enumerate import enumerate_executions
from repro.model.models import ptx_model

from _common import report


def test_fig14_execution_graph(benchmark):
    test = library.build("mp-fig14")
    model = ptx_model()

    def enumerate_and_check():
        executions = enumerate_executions(test)
        weak = [e for e in executions if test.condition.holds(e.final_state)]
        failures = model.failed_checks(weak[0])
        return executions, weak, failures

    executions, weak, failures = benchmark(enumerate_and_check)
    lines = ["fig14: %d candidate executions of %s" % (len(executions),
                                                       test.name),
             "", weak[0].pretty(), ""]
    for failure in failures:
        lines.append("forbidden by %s; offending cycle:" % failure.name)
        lines.extend("  %s" % event.pretty() for event in failure.cycle)
    report("fig14_executions", "\n".join(lines))

    assert len(executions) == 4
    assert len(weak) == 1
    assert any(f.name == "cta-constraint" for f in failures)
    # Fig. 14's cycle spans membar.cta, rfe, membar.gl and fr: 4 events.
    cycle = [f for f in failures if f.name == "cta-constraint"][0].cycle
    assert len(cycle) == 4
