"""Fig. 9 — cas-sl: the CUDA-by-Example spin lock admits stale reads in
its critical section; membar.gl fences forbid it (Nvidia's erratum)."""

from repro.data import paper
from repro.litmus import library

from _common import iterations, reproduce_figure

_FENCED_ZEROS = {chip: 0 for chip in paper.FIGURE_CHIPS}


def test_fig9_cas_sl(benchmark):
    per_cell = max(iterations(), 8000)
    rows = [
        ("cas-sl", library.build("cas-sl"), paper.FIG9_CAS_SL),
        ("cas-sl+membar.gls", library.cas_sl(fences=True), _FENCED_ZEROS),
    ]
    reproduce_figure(benchmark, "fig09_cas_sl", rows, paper.FIGURE_CHIPS,
                     iterations_per_cell=per_cell)
