"""Sec. 5.4 — validating the model: experimental soundness.

The paper generated 10930 tests with diy, ran each 100k times on six
Nvidia chips, and confirmed the PTX model allows every observed
behaviour.  We reproduce the workflow at benchmark scale through the
conformance pipeline (:func:`repro.api.conformance.run_soundness`): a
diy-generated family plus the paper's own tests, streamed in chunks
through the shared memoising session, every observed final state checked
against the model's allowed set — with model verdicts enumerated once
per test (the model session's cache signature ignores the chip), not
once per chip.

The model covers ``.cg`` accesses (Sec. 5.5), so generated tests are all
``.cg`` — exactly the corpus shape the paper validates on.

The corpus has two tranches: the broad length-≤4 family over the full
edge pool (the shape the paper's 10930-test corpus emphasises), and a
*deep* tranche of length-5/6 cycles over a write-heavy pool with both
fence scopes and both communication-scope annotations — enumerable at
campaign scale only since the fast model engine's pruned exploration
(PR 4); the reference engine spends seconds per length-6 cell where the
compiled path spends tens of milliseconds.
"""

import os

from repro._util import format_table
from repro.api.conformance import run_soundness, uniquify_tests
from repro.diy import (SAME_CTA, coe, default_pool, dp, enumerate_cycles,
                       fenced, fre, generate_tests, po, rfe)
from repro.diy.generate import cycle_to_test
from repro.errors import GenerationError
from repro.litmus import library
from repro.ptx.types import Scope

from _common import (LIBRARY_CG_TESTS, SOUNDNESS_CHIPS, SOUNDNESS_SEED,
                     report, session, soundness_runs)


def _family_size():
    return int(os.environ.get("REPRO_FAMILY", "120"))


def _deep_family_size():
    """Cap on the deep (length-5/6) tranche (env ``REPRO_DEEP_FAMILY``)."""
    return int(os.environ.get("REPRO_DEEP_FAMILY", "12"))


def _deep_pool():
    """Write-heavy edge pool for the deep tranche: same-location po
    pairs concentrate writes on few locations (the coherence-permutation
    blow-up), with address dependencies, both fence scopes and both
    communication-scope annotations in the mix."""
    return [po("W", "W", same_loc=True), po("R", "R", same_loc=True),
            dp("addr", "R"),
            fenced(Scope.CTA, "W", "R"), fenced(Scope.GL, "W", "W"),
            rfe(), fre(), coe(), rfe(SAME_CTA), fre(SAME_CTA)]


def _deep_family(max_tests):
    """Length-5/6 tests from the deep pool, budget split across lengths."""
    tests = []
    pool = _deep_pool()
    for length in (5, 6):
        budget = max_tests - len(tests) if length == 6 else max_tests // 2
        taken = 0
        for cycle in enumerate_cycles(pool, length):
            if taken >= budget:
                break
            try:
                tests.append(cycle_to_test(cycle))
            except GenerationError:
                continue
            taken += 1
    return tests


def test_sec54_model_soundness(benchmark):
    # Library + extended tests first: uniquify_tests keeps the first
    # occurrence of a name, so the paper's tests keep their canonical
    # names (and their cache identity, shared with bench_sec44) while
    # the generated classics (mp, sb, ...) get ordinal suffixes.
    family = [library.build(name) for name in LIBRARY_CG_TESTS]
    from repro.litmus.extended import EXTENDED_TESTS, build_extended
    family += [build_extended(name) for name in sorted(EXTENDED_TESTS)]
    family += generate_tests(default_pool(fences=(Scope.CTA, Scope.GL)),
                             max_length=4, max_tests=_family_size())
    family += _deep_family(_deep_family_size())
    family = uniquify_tests(family)
    runs = soundness_runs()

    def validate():
        return run_soundness(family, SOUNDNESS_CHIPS, iterations=runs,
                             seed=SOUNDNESS_SEED, sim_session=session())

    result = benchmark.pedantic(validate, rounds=1, iterations=1)
    observed = sum(cell.distinct_states for cell in result.cells)
    report("sec54_soundness", format_table(
        ["metric", "value"],
        [["tests in family (diy + library)", len(family)],
         ["(test, chip) cells checked", len(result.cells)],
         ["runs per cell", runs],
         ["distinct observed final states", observed],
         ["states forbidden by the model (must be 0)",
          len(result.violations)],
         ["model enumerations (memoised per test)",
          result.model_stats["executed"]],
         ["paper's corpus", "10930 tests x 100k runs x 6 chips"]]))
    assert result.ok, ("the PTX model must allow every observation:\n"
                       + "\n".join(result.violation_lines()))
    assert len(result.cells) == len(family) * len(SOUNDNESS_CHIPS)
    # One enumeration per test text, never one per chip: executions plus
    # cache hits account for every planned model spec.
    assert result.model_stats["executed"] <= len(family)
    assert (result.model_stats["executed"] + result.model_stats["cache_hits"]
            + result.model_stats["deduplicated"] == len(family))
