"""Sec. 5.4 — validating the model: experimental soundness.

The paper generated 10930 tests with diy, ran each 100k times on six
Nvidia chips, and confirmed the PTX model allows every observed
behaviour.  We reproduce the workflow at benchmark scale through the
conformance pipeline (:func:`repro.api.conformance.run_soundness`): a
diy-generated family plus the paper's own tests, streamed in chunks
through the shared memoising session, every observed final state checked
against the model's allowed set — with model verdicts enumerated once
per test (the model session's cache signature ignores the chip), not
once per chip.

The model covers ``.cg`` accesses (Sec. 5.5), so generated tests are all
``.cg`` — exactly the corpus shape the paper validates on.
"""

import os

from repro._util import format_table
from repro.api.conformance import run_soundness, uniquify_tests
from repro.diy import default_pool, generate_tests
from repro.litmus import library
from repro.ptx.types import Scope

from _common import (LIBRARY_CG_TESTS, SOUNDNESS_CHIPS, SOUNDNESS_SEED,
                     report, session, soundness_runs)


def _family_size():
    return int(os.environ.get("REPRO_FAMILY", "120"))


def test_sec54_model_soundness(benchmark):
    # Library + extended tests first: uniquify_tests keeps the first
    # occurrence of a name, so the paper's tests keep their canonical
    # names (and their cache identity, shared with bench_sec44) while
    # the generated classics (mp, sb, ...) get ordinal suffixes.
    family = [library.build(name) for name in LIBRARY_CG_TESTS]
    from repro.litmus.extended import EXTENDED_TESTS, build_extended
    family += [build_extended(name) for name in sorted(EXTENDED_TESTS)]
    family += generate_tests(default_pool(fences=(Scope.CTA, Scope.GL)),
                             max_length=4, max_tests=_family_size())
    family = uniquify_tests(family)
    runs = soundness_runs()

    def validate():
        return run_soundness(family, SOUNDNESS_CHIPS, iterations=runs,
                             seed=SOUNDNESS_SEED, sim_session=session())

    result = benchmark.pedantic(validate, rounds=1, iterations=1)
    observed = sum(cell.distinct_states for cell in result.cells)
    report("sec54_soundness", format_table(
        ["metric", "value"],
        [["tests in family (diy + library)", len(family)],
         ["(test, chip) cells checked", len(result.cells)],
         ["runs per cell", runs],
         ["distinct observed final states", observed],
         ["states forbidden by the model (must be 0)",
          len(result.violations)],
         ["model enumerations (memoised per test)",
          result.model_stats["executed"]],
         ["paper's corpus", "10930 tests x 100k runs x 6 chips"]]))
    assert result.ok, ("the PTX model must allow every observation:\n"
                       + "\n".join(result.violation_lines()))
    assert len(result.cells) == len(family) * len(SOUNDNESS_CHIPS)
    # One enumeration per test text, never one per chip: executions plus
    # cache hits account for every planned model spec.
    assert result.model_stats["executed"] <= len(family)
    assert (result.model_stats["executed"] + result.model_stats["cache_hits"]
            + result.model_stats["deduplicated"] == len(family))
