"""Sec. 5.4 — validating the model: experimental soundness.

The paper generated 10930 tests with diy, ran each 100k times on six
Nvidia chips, and confirmed the PTX model allows every observed
behaviour.  We reproduce the workflow at benchmark scale: a diy-generated
family plus the paper's own tests, each run on simulated chips, with
every observed final state checked against the model's allowed set.

The model covers ``.cg`` accesses (Sec. 5.5), so generated tests are all
``.cg`` — exactly the corpus shape the paper validates on.
"""

import os

from repro._util import format_table
from repro.diy import default_pool, generate_tests
from repro.harness import run_paper_config
from repro.litmus import library
from repro.model.enumerate import allowed_final_states, enumerate_executions
from repro.model.models import ptx_model
from repro.ptx.types import Scope

from _common import report

_LIBRARY_CG_TESTS = ["mp", "sb", "lb", "coRR", "dlb-lb", "cas-sl",
                     "sl-future", "exch-sl", "lb+membar.ctas",
                     "mp+membar.gls", "dlb-lb+membar.gls"]
_CHIPS = ["TesC", "GTX6", "Titan", "GTX7"]


def _family_size():
    return int(os.environ.get("REPRO_FAMILY", "120"))


def _runs_per_test():
    return int(os.environ.get("REPRO_SOUNDNESS_RUNS", "120"))


def test_sec54_model_soundness(benchmark):
    model = ptx_model()
    family = generate_tests(default_pool(fences=(Scope.CTA, Scope.GL)),
                            max_length=4, max_tests=_family_size())
    family += [library.build(name) for name in _LIBRARY_CG_TESTS]
    from repro.litmus.extended import EXTENDED_TESTS, build_extended
    family += [build_extended(name) for name in sorted(EXTENDED_TESTS)]
    runs = _runs_per_test()

    def validate():
        checked = observed_states = violations = 0
        for test in family:
            allowed = allowed_final_states(enumerate_executions(test),
                                           model=model)
            for chip in _CHIPS:
                result = run_paper_config(test, chip, iterations=runs,
                                          seed=17)
                for state in result.histogram.counts:
                    observed_states += 1
                    if state not in allowed:
                        violations += 1
                checked += 1
        return checked, observed_states, violations

    checked, observed, violations = benchmark.pedantic(validate, rounds=1,
                                                       iterations=1)
    report("sec54_soundness", format_table(
        ["metric", "value"],
        [["tests in family (diy + library)", len(family)],
         ["(test, chip) cells checked", checked],
         ["runs per cell", runs],
         ["distinct observed final states", observed],
         ["states forbidden by the model (must be 0)", violations],
         ["paper's corpus", "10930 tests x 100k runs x 6 chips"]]))
    assert violations == 0, "the PTX model must allow every observation"
    assert checked == len(family) * len(_CHIPS)
