"""Table 3 — the idiom glossary: every figure's test carries the idiom
the paper assigns it, and diy recognises the idioms from cycles."""

from repro._util import format_table
from repro.diy import Cycle, classify, fre, po, rfe
from repro.litmus import library

from _common import report

#: Table 3 rows: idiom -> (description, the figures it appears in).
TABLE3 = {
    "coRR": ("coherence of read-read pairs", ["coRR", "coRR-L2-L1"]),
    "mp": ("message passing (viz. handshake)", ["mp-L1", "mp-volatile",
                                                "dlb-mp", "cas-sl",
                                                "sl-future", "mp"]),
    "lb": ("load buffering", ["dlb-lb", "lb"]),
    "sb": ("store buffering", ["sb", "SB-fig12"]),
}


def test_table3_idiom_glossary(benchmark):
    def classify_library():
        assignments = {}
        for idiom, (_, test_names) in TABLE3.items():
            for name in test_names:
                assignments[name] = library.build(name).idiom
        return assignments

    assignments = benchmark(classify_library)
    rows = []
    for idiom, (description, test_names) in TABLE3.items():
        rows.append([idiom, description, ", ".join(test_names)])
        for name in test_names:
            assert assignments[name] == idiom, (name, assignments[name])
    report("table3_idioms", "table 3: glossary of idioms\n"
           + format_table(["name", "description", "tests"], rows))


def test_table3_diy_recognises_idioms(benchmark):
    cycles = {
        "mp": Cycle([po("W", "W"), rfe(), po("R", "R"), fre()]),
        "sb": Cycle([po("W", "R"), fre(), po("W", "R"), fre()]),
        "lb": Cycle([po("R", "W"), rfe(), po("R", "W"), rfe()]),
        "coRR": Cycle([rfe(), po("R", "R", same_loc=True), fre()]),
    }

    def classify_all():
        return {idiom: classify(cycle) for idiom, cycle in cycles.items()}

    names = benchmark(classify_all)
    assert names == {idiom: idiom for idiom in cycles}
