"""Fig. 12 — the GPU litmus format: parse/print round-trip of the sb
example and throughput of the parser over the whole library."""

from repro.litmus import library, parse_litmus, write_litmus

from _common import report


def test_fig12_round_trip(benchmark):
    def round_trip_library():
        count = 0
        for name in sorted(library.PAPER_TESTS):
            test = library.build(name)
            parsed = parse_litmus(write_litmus(test))
            assert parsed.condition == test.condition, name
            assert [str(i) for thread in parsed.threads for i in thread] == \
                   [str(i) for thread in test.threads for i in thread], name
            count += 1
        return count

    count = benchmark(round_trip_library)
    sb = library.build("SB-fig12")
    report("fig12_format",
           "fig12: litmus format round-trip over %d library tests\n\n%s"
           % (count, write_litmus(sb)))
    assert count >= 25
