"""Sec. 6 — the operational model of Sorensen et al. is unsound.

The inter-CTA ``lb+membar.ctas`` test is forbidden by that model (fences
order at every scope there) but was observed 586 times per 100k on the
GTX Titan and 19 on the GTX 660.  Our scope-aware simulator reproduces
the observation; the scope-blind machine and the unscoped-RMO axiomatic
shadow reproduce the forbidding — and the paper's PTX model allows it.
"""

from repro._util import format_table
from repro.data.paper import SEC6_LB_MEMBAR_CTAS
from repro.litmus import library
from repro.model.models import ptx_model
from repro.model.operational import SorensenOperationalModel
from repro.sim import chip
from repro.sim.machine import run_iterations

from _common import iterations, report


def test_sec6_operational_model_unsound(benchmark):
    test = library.build("lb+membar.ctas")
    runs = max(iterations(), 8000)

    def investigate():
        outcome = {}
        for chip_name, paper_rate in SEC6_LB_MEMBAR_CTAS.items():
            profile = chip(chip_name)
            model = SorensenOperationalModel(profile)
            histogram = run_iterations(test, profile, runs, seed=9)
            observed = sum(count for state, count in histogram.items()
                           if test.condition.holds(state))
            outcome[chip_name] = {
                "observed_per_100k": observed * 100000.0 / runs,
                "paper_per_100k": paper_rate,
                "sorensen_forbids": not model.allows_condition(test),
                "scope_blind_witnesses": model.observes_condition(
                    test, runs=min(runs, 3000), seed=9),
            }
        return outcome

    outcome = benchmark.pedantic(investigate, rounds=1, iterations=1)
    rows = [[chip_name,
             "%.0f" % data["observed_per_100k"],
             data["paper_per_100k"],
             "forbids" if data["sorensen_forbids"] else "allows",
             "yes" if data["scope_blind_witnesses"] else "no"]
            for chip_name, data in outcome.items()]
    ptx_allows = ptx_model().allows_condition(test)
    rows.append(["(PTX model)", "-", "-",
                 "allows" if ptx_allows else "forbids", "-"])
    report("sec6_operational", "sec 6: lb+membar.ctas (inter-CTA)\n"
           + format_table(["chip", "sim/100k", "paper/100k",
                           "Sorensen model", "scope-blind machine sees it"],
                          rows))
    for chip_name, data in outcome.items():
        assert data["sorensen_forbids"], chip_name
        assert not data["scope_blind_witnesses"], chip_name
    assert outcome["Titan"]["observed_per_100k"] > 0
    assert ptx_allows
