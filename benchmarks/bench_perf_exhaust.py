#!/usr/bin/env python
"""Exhaustive-explorer pruning benchmark: DPOR vs naive enumeration,
tracked in BENCH_exhaust.json.

Explores every cell of a pinned corpus (:data:`repro.perf.EXHAUST_PINNED_CORPUS`;
``--corpus tiny`` for the CI smoke subset) with persistent-set/
sleep-set DPOR, with naive full interleaving enumeration (skipped on
the dpor-only cells whose naive space is intractable) and through a
``--workers``-wide process-pool session (the branch-sharded parallel
mode), prints the comparison and writes the machine-readable trajectory
file.  Exits non-zero if

* any cell's oracle pairs diverge (DPOR vs naive reachable sets where
  both ran; serial vs parallel merged verdicts everywhere — pruning
  and sharding may never lose a state), or
* the corpus-wide total reduction factor (naive transitions / DPOR
  transitions over the differential cells) falls below
  ``--min-reduction`` (default 10), or
* the branch partition of any dpor-only (wide) cell admits less than
  ``--min-balance`` speedup at ``--workers`` workers (default 2.5: the
  deterministic load-balance bound, not a wall measurement).

Usage::

    python benchmarks/bench_perf_exhaust.py                 # pinned corpus
    python benchmarks/bench_perf_exhaust.py --corpus tiny \
        --min-reduction 10 --output BENCH_exhaust.json
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ReproError  # noqa: E402
from repro.perf import (bench_exhaust, exhaust_corpus_by_name,  # noqa: E402
                        render_exhaust_table, summarize_exhaust,
                        write_exhaust_report)
from repro.perf.exhaustbench import DEFAULT_WORKERS  # noqa: E402

#: Default output: the tracked trajectory file at the repo root.
DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_exhaust.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--corpus", default="pinned",
                        choices=("pinned", "tiny"),
                        help="cell set: pinned (default) or the CI-sized "
                             "tiny subset")
    parser.add_argument("--loop-bound", type=int, default=3,
                        help="spin-retry bound per backward branch "
                             "(default 3, the explorer default)")
    parser.add_argument("--min-reduction", type=float, default=10.0,
                        help="fail if the corpus-wide total reduction "
                             "(naive/DPOR transitions) is below this "
                             "(default 10)")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        help="process-pool width for the parallel leg and "
                             "the balance bound (default %d)"
                             % DEFAULT_WORKERS)
    parser.add_argument("--min-balance", type=float, default=2.5,
                        help="fail if any dpor-only cell's branch "
                             "partition admits less than this speedup at "
                             "--workers workers (default 2.5)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_exhaust.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    try:
        corpus = exhaust_corpus_by_name(args.corpus)
        cells = bench_exhaust(corpus, loop_bound=args.loop_bound,
                              workers=args.workers)
    except ReproError as error:
        raise SystemExit(str(error))
    summary = summarize_exhaust(cells)
    print(render_exhaust_table(cells))
    print("reduction: %.1fx total (%d -> %d transitions), %.1fx geomean, "
          "%.1fx min / %.1fx max per differential cell"
          % (summary["reduction_total"],
             summary["total_naive_transitions"],
             summary["total_dpor_transitions"],
             summary["reduction_geomean"], summary["min_reduction"],
             summary["max_reduction"]))
    print("parallel: %d dpor-only cells, balance bound >= %.2fx at %d "
          "workers" % (summary["dpor_only_cells"],
                       summary["min_balance_speedup"], args.workers))
    write_exhaust_report(args.output, cells, args.corpus, args.loop_bound)
    print("wrote %s" % os.path.relpath(args.output))

    failures = []
    if not summary["all_identical"]:
        failures.append("oracles diverged: some cell's DPOR/naive or "
                        "serial/parallel reachable results are not "
                        "identical")
    if summary["reduction_total"] < args.min_reduction:
        failures.append("total reduction %.1fx < %.1fx"
                        % (summary["reduction_total"], args.min_reduction))
    if summary["min_balance_speedup"] < args.min_balance:
        failures.append("balance bound %.2fx < %.2fx at %d workers"
                        % (summary["min_balance_speedup"],
                           args.min_balance, args.workers))
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
