#!/usr/bin/env python
"""Exhaustive-explorer pruning benchmark: DPOR vs naive enumeration,
tracked in BENCH_exhaust.json.

Explores every cell of a pinned corpus (:data:`repro.perf.EXHAUST_PINNED_CORPUS`;
``--corpus tiny`` for the CI smoke subset) twice — persistent-set/
sleep-set DPOR and naive full interleaving enumeration — prints the
transition-count comparison and writes the machine-readable trajectory
file.  Exits non-zero if

* any cell's DPOR and naive reachable-state sets diverge (the soundness
  contract: pruning may never lose a state), or
* the corpus-wide total reduction factor (naive transitions / DPOR
  transitions) falls below ``--min-reduction`` (default 10: the
  headline the exhaustive mode was built to earn).

Usage::

    python benchmarks/bench_perf_exhaust.py                 # pinned corpus
    python benchmarks/bench_perf_exhaust.py --corpus tiny \\
        --min-reduction 10 --output BENCH_exhaust.json
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ReproError  # noqa: E402
from repro.perf import (bench_exhaust, exhaust_corpus_by_name,  # noqa: E402
                        render_exhaust_table, summarize_exhaust,
                        write_exhaust_report)

#: Default output: the tracked trajectory file at the repo root.
DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "BENCH_exhaust.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--corpus", default="pinned",
                        choices=("pinned", "tiny"),
                        help="cell set: pinned (default) or the CI-sized "
                             "tiny subset")
    parser.add_argument("--loop-bound", type=int, default=3,
                        help="spin-retry bound per backward branch "
                             "(default 3, the explorer default)")
    parser.add_argument("--min-reduction", type=float, default=10.0,
                        help="fail if the corpus-wide total reduction "
                             "(naive/DPOR transitions) is below this "
                             "(default 10)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_exhaust.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    try:
        corpus = exhaust_corpus_by_name(args.corpus)
        cells = bench_exhaust(corpus, loop_bound=args.loop_bound)
    except ReproError as error:
        raise SystemExit(str(error))
    summary = summarize_exhaust(cells)
    print(render_exhaust_table(cells))
    print("reduction: %.1fx total (%d -> %d transitions), %.1fx geomean, "
          "%.1fx min / %.1fx max per cell"
          % (summary["reduction_total"],
             summary["total_naive_transitions"],
             summary["total_dpor_transitions"],
             summary["reduction_geomean"], summary["min_reduction"],
             summary["max_reduction"]))
    write_exhaust_report(args.output, cells, args.corpus, args.loop_bound)
    print("wrote %s" % os.path.relpath(args.output))

    failures = []
    if not summary["all_identical"]:
        failures.append("strategies diverged: some cell's DPOR and naive "
                        "reachable-state sets are not identical")
    if summary["reduction_total"] < args.min_reduction:
        failures.append("total reduction %.1fx < %.1fx"
                        % (summary["reduction_total"], args.min_reduction))
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
