"""Tests for the .cat language interpreter."""

import pytest

from repro.errors import CatEvalError, CatSyntaxError
from repro.litmus import library
from repro.model.cat import CatModel, tokenize
from repro.model.enumerate import enumerate_executions
from repro.model.models import PTX_CAT


def _weak_mp_execution():
    """The mp execution with both loads hitting the weak outcome."""
    test = library.build("mp")
    for execution in enumerate_executions(test):
        if test.condition.holds(execution.final_state):
            return execution
    raise AssertionError("weak mp candidate missing")


def _sc_mp_execution():
    test = library.build("mp")
    for execution in enumerate_executions(test):
        state = execution.final_state
        if state.reg(1, "r1") == 1 and state.reg(1, "r2") == 1:
            return execution
    raise AssertionError("sc mp candidate missing")


class TestTokenizer:
    def test_names_with_dots_and_dashes(self):
        kinds = [t.text for t in tokenize("po-loc | membar.cta")]
        assert kinds == ["po-loc", "|", "membar.cta"]

    def test_comments_stripped(self):
        tokens = tokenize("(* a comment *) let x = po // trailing")
        assert [t.text for t in tokens] == ["let", "x", "=", "po"]

    def test_keywords_recognised(self):
        kinds = [t.kind for t in tokenize("let acyclic as empty irreflexive")]
        assert kinds == ["LET", "ACYCLIC", "AS", "EMPTY", "IRREFLEXIVE"]

    def test_inverse_operator(self):
        assert [t.kind for t in tokenize("rf^-1")] == ["NAME", "INVERSE"]

    def test_bad_character_rejected(self):
        with pytest.raises(CatSyntaxError):
            tokenize("let x = $")


class TestParsing:
    def test_model_statement_counts(self):
        model = CatModel(PTX_CAT)
        assert len(model.check_names) == 6
        assert "sc-per-loc-llh" in model.check_names
        assert "cta-constraint" in model.check_names

    def test_function_binding(self):
        model = CatModel("let f(x) = x | rf\nacyclic f(po) as check1")
        assert model.check_names == ["check1"]

    def test_missing_equals_rejected(self):
        with pytest.raises(CatSyntaxError):
            CatModel("let x po")

    def test_recursive_let_rejected(self):
        with pytest.raises(CatSyntaxError):
            CatModel("let rec x = x | po")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(CatSyntaxError):
            CatModel("acyclic (po | rf")


class TestEvaluation:
    def test_sc_forbids_weak_mp(self):
        model = CatModel("acyclic (po | rf | co | fr) as sc")
        assert not model.allows(_weak_mp_execution())
        assert model.allows(_sc_mp_execution())

    def test_failed_check_reports_cycle(self):
        model = CatModel("acyclic (po | rf | co | fr) as sc")
        failures = model.failed_checks(_weak_mp_execution())
        assert len(failures) == 1
        assert failures[0].name == "sc"
        assert len(failures[0].cycle) >= 2

    def test_filters(self):
        model = CatModel("acyclic (WW(po) | rf | co | fr) as writes-ordered")
        # mp weak outcome needs *both* the write and read sides reordered;
        # ordering only writes still forbids nothing here because reads are
        # free: the weak execution survives.
        assert model.allows(_weak_mp_execution())

    def test_sequence_operator(self):
        model = CatModel("empty (rf ; rf) as no-chained-rf")
        assert model.allows(_weak_mp_execution())  # rf targets reads only

    def test_inverse_and_sequence_give_fr(self):
        model = CatModel("empty (rf^-1 ; co) \\ fr as fr-definition")
        execution = _weak_mp_execution()
        # fr = rf^-1 ; co by definition (modulo the identity, absent here).
        assert model.allows(execution)

    def test_difference(self):
        model = CatModel(r"empty po \ po as nothing")
        assert model.allows(_weak_mp_execution())

    def test_zero_relation(self):
        model = CatModel("empty 0 as zero")
        assert model.allows(_weak_mp_execution())

    def test_closure_star_and_plus(self):
        model = CatModel("acyclic (rf ; rf+) as silly")
        assert model.allows(_weak_mp_execution())

    def test_user_function_application(self):
        text = "let fence-of(f) = f\nacyclic fence-of(membar.gl) as fences"
        assert CatModel(text).allows(_weak_mp_execution())

    def test_unknown_relation_raises(self):
        model = CatModel("acyclic nonsuch as oops")
        with pytest.raises(CatEvalError):
            model.allows(_weak_mp_execution())

    def test_unknown_function_raises(self):
        model = CatModel("acyclic nonsuch(po) as oops")
        with pytest.raises(CatEvalError):
            model.allows(_weak_mp_execution())

    def test_function_used_without_argument_raises(self):
        model = CatModel("let f(x) = x\nacyclic f as oops")
        with pytest.raises(CatEvalError):
            model.allows(_weak_mp_execution())

    def test_relations_inspection(self):
        model = CatModel("let com = rf | co | fr")
        relations = model.relations(_weak_mp_execution())
        assert "com" in relations
        assert len(relations["com"]) > 0


class TestChecksSemantics:
    def test_irreflexive_check(self):
        assert CatModel("irreflexive po as irr").allows(_weak_mp_execution())

    def test_empty_check_fails_when_nonempty(self):
        model = CatModel("empty po as no-po")
        assert not model.allows(_weak_mp_execution())

    def test_acyclic_self_loop(self):
        model = CatModel("acyclic id as no-id")
        assert not model.allows(_weak_mp_execution())
