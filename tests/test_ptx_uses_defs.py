"""Register use/def sets for every PTX instruction class.

The static analyzer's dependency tracing (`repro.analysis.accesses`)
leans entirely on ``uses()``/``defs()``, so every instruction class is
pinned here — including the guarded variants, whose guard register must
appear in ``uses()``, and register-based addresses, whose base register
must flow through ``operand_registers``.
"""

import pytest

from repro.ptx.instructions import (Add, And, AtomAdd, AtomCas, AtomExch,
                                    AtomInc, Bra, Cvt, Guard, Label, Ld,
                                    Membar, Mov, RMW_CLASSES, Setp, St, Xor,
                                    is_rmw)
from repro.ptx.operands import Addr, Imm, Loc, Reg
from repro.ptx.types import CacheOp, Scope


LOC_X = Addr(Loc("x"))
REG_ADDR = Addr(Reg("ra"), 4)


class TestMemoryAccessUsesDefs:
    def test_ld(self):
        ld = Ld(Reg("r1"), LOC_X, cop=CacheOp.CG)
        assert ld.uses() == set()
        assert ld.defs() == {"r1"}

    def test_ld_register_address_uses_base(self):
        ld = Ld(Reg("r1"), REG_ADDR, cop=CacheOp.CG)
        assert ld.uses() == {"ra"}
        assert ld.defs() == {"r1"}

    def test_st_immediate(self):
        st = St(LOC_X, Imm(1), cop=CacheOp.CG)
        assert st.uses() == set()
        assert st.defs() == set()

    def test_st_register_source_and_address(self):
        st = St(REG_ADDR, Reg("rv"), cop=CacheOp.CG)
        assert st.uses() == {"ra", "rv"}
        assert st.defs() == set()

    def test_atom_cas(self):
        cas = AtomCas(Reg("r0"), LOC_X, Imm(0), Imm(1))
        assert cas.uses() == set()
        assert cas.defs() == {"r0"}
        cas = AtomCas(Reg("r0"), REG_ADDR, Reg("rc"), Reg("rn"))
        assert cas.uses() == {"ra", "rc", "rn"}

    def test_atom_exch(self):
        exch = AtomExch(Reg("r0"), LOC_X, Reg("rs"))
        assert exch.uses() == {"rs"}
        assert exch.defs() == {"r0"}

    def test_atom_inc(self):
        inc = AtomInc(Reg("r0"), REG_ADDR)
        assert inc.uses() == {"ra"}
        assert inc.defs() == {"r0"}

    def test_atom_add(self):
        add = AtomAdd(Reg("r0"), LOC_X, Reg("rs"))
        assert add.uses() == {"rs"}
        assert add.defs() == {"r0"}

    def test_rmw_classification(self):
        assert set(RMW_CLASSES) == {AtomCas, AtomExch, AtomInc, AtomAdd}
        assert is_rmw(AtomInc(Reg("r0"), LOC_X))
        assert not is_rmw(Ld(Reg("r0"), LOC_X, cop=CacheOp.CG))
        assert not is_rmw(St(LOC_X, Imm(1), cop=CacheOp.CG))


class TestAluUsesDefs:
    def test_mov(self):
        assert Mov(Reg("r1"), Imm(3)).uses() == set()
        assert Mov(Reg("r1"), Reg("r2")).uses() == {"r2"}
        assert Mov(Reg("r1"), Loc("x")).uses() == set()
        assert Mov(Reg("r1"), Reg("r2")).defs() == {"r1"}

    @pytest.mark.parametrize("cls", [Add, And, Xor])
    def test_binary_alu(self, cls):
        op = cls(Reg("r1"), Reg("r2"), Imm(1))
        assert op.uses() == {"r2"}
        assert op.defs() == {"r1"}
        both = cls(Reg("r1"), Reg("r2"), Reg("r3"))
        assert both.uses() == {"r2", "r3"}

    def test_cvt(self):
        cvt = Cvt(Reg("r1"), Reg("r2"))
        assert cvt.uses() == {"r2"}
        assert cvt.defs() == {"r1"}

    def test_setp(self):
        setp = Setp("eq", Reg("p0"), Reg("r1"), Imm(1))
        assert setp.uses() == {"r1"}
        assert setp.defs() == {"p0"}


class TestControlAndFences:
    def test_membar(self):
        fence = Membar(Scope.GL)
        assert fence.uses() == set()
        assert fence.defs() == set()
        assert fence.is_fence and not fence.is_memory_access

    def test_bra(self):
        bra = Bra("LOOP")
        assert bra.uses() == set()
        assert bra.defs() == set()

    def test_label(self):
        label = Label("LOOP")
        assert label.uses() == set()
        assert label.defs() == set()


class TestGuardedUses:
    """Every guarded instruction reads its predicate register."""

    @pytest.mark.parametrize("negated", [False, True])
    def test_guarded_bra(self, negated):
        bra = Bra("LOOP", guard=Guard("p0", negated=negated))
        assert bra.uses() == {"p0"}

    def test_guarded_memory_accesses(self):
        guard = Guard("p7")
        assert Ld(Reg("r1"), REG_ADDR, cop=CacheOp.CG,
                  guard=guard).uses() == {"p7", "ra"}
        assert St(LOC_X, Reg("rv"), cop=CacheOp.CG,
                  guard=guard).uses() == {"p7", "rv"}
        assert AtomCas(Reg("r0"), LOC_X, Imm(0), Imm(1),
                       guard=guard).uses() == {"p7"}
        assert AtomExch(Reg("r0"), LOC_X, Reg("rs"),
                        guard=guard).uses() == {"p7", "rs"}
        assert AtomInc(Reg("r0"), LOC_X, guard=guard).uses() == {"p7"}
        assert AtomAdd(Reg("r0"), LOC_X, Imm(2), guard=guard).uses() == {"p7"}

    def test_guarded_alu_and_fence(self):
        guard = Guard("p1", negated=True)
        assert Mov(Reg("r1"), Imm(0), guard=guard).uses() == {"p1"}
        assert Add(Reg("r1"), Reg("r2"), Imm(1),
                   guard=guard).uses() == {"p1", "r2"}
        assert Cvt(Reg("r1"), Reg("r2"), guard=guard).uses() == {"p1", "r2"}
        assert Setp("ne", Reg("p0"), Reg("r1"), Imm(0),
                    guard=guard).uses() == {"p1", "r1"}
        assert Membar(Scope.CTA, guard=guard).uses() == {"p1"}

    def test_guard_never_defines(self):
        assert Bra("L", guard=Guard("p0")).defs() == set()
        assert Membar(Scope.SYS, guard=Guard("p0")).defs() == set()
