"""Straggler-tail hand-off and cross-worker plan-cache contracts.

The batch engine's tail hand-off (``tail_fraction`` /
``REPRO_BATCH_TAIL``) drains a chunk's last spinning survivors on the
compiled fast engine instead of paying full-width numpy dispatch.  Its
contracts, enforced here:

* ``tail_fraction=0`` is the legacy path — **bit-identical** to the
  pre-tail batch stream (pinned golden histogram signatures);
* any tail stays **distribution-equivalent** to the pure-lockstep
  stream and to the fast engine (TVD inside the sampling envelope,
  loss verdicts agreeing) on the spin-heavy scenarios the hand-off
  exists for;
* results are deterministic per seed and invariant across the
  session's jobs/executor decomposition;
* the knob resolves with ``ConfigurationError`` on junk, stays out of
  spec fingerprints and joins backend cache signatures (the ``engine``
  discipline);
* lowered plans round-trip through the process-safe plan store
  (:mod:`repro.sim.plancache`) bit-identically, tolerate corrupt
  entries, and surface hit/miss counters through ``SpecResult.stats``
  and the session stats — including across process-pool workers.
"""

import hashlib
import os
import random

import pytest

from repro.api import RunSpec, Session, SimBackend
from repro.apps import AppBackend, app_session, get_scenario, run_scenario
from repro.apps.scenario import ScenarioSpec
from repro.errors import ConfigurationError
from repro.harness.histogram import Histogram
from repro.litmus import library
from repro.perf import tvd, tvd_envelope
from repro.sim import CHIPS, compile_batch_cell, compile_cell, have_numpy
from repro.sim.engine import (BATCH_TAIL_RANGE, DEFAULT_BATCH_TAIL,
                              resolve_batch_tail, run_batch)
from repro.sim.plancache import plan_signature, plan_store

requires_numpy = pytest.mark.skipif(not have_numpy(),
                                    reason="numpy not installed")

#: The scenarios whose spin loops motivate the hand-off (CAS, exchange,
#: intra-CTA and ticket locks), each on a chip from the perf corpus.
SPIN_CELLS = (
    ("dot-cbe", "Titan"),
    ("dot-so", "HD7970"),
    ("dot-heyu-cta", "TesC"),
    ("ticket", "TesC"),
)

#: Pinned histogram signatures of the pre-tail batch engine.  The
#: ``tail_fraction=0`` path must keep reproducing these exact streams —
#: any optimisation that perturbs the legacy RNG draw order shows up
#: here first.
LITMUS_GOLDENS = (
    ("mp", "Titan", 3000, 11, "6f829a37626e7328"),
    ("sb", "GTX5", 3000, 13, "5f7c64085ecb7620"),
    # > MAX_BATCH: exercises the legacy fixed-width chunk seeding.
    ("mp", "Titan", 26000, 5, "7d3e0f0617959b19"),
)
DOT_GOLDEN = ("dot-cbe", "Titan", 3000, 17, "d81a174e65df21d1")


def _signature(histogram):
    payload = repr(sorted((str(k), v) for k, v in histogram.counts.items()))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _losses(histogram, test):
    return Histogram(dict(histogram.counts)).observations(test.condition)


@requires_numpy
class TestTailZeroBitIdentity:
    """``tail_fraction=0`` reproduces the pre-tail batch stream."""

    @pytest.mark.parametrize("name,chip,n,seed,expected", LITMUS_GOLDENS)
    def test_litmus_goldens(self, name, chip, n, seed, expected):
        cell = compile_batch_cell(library.build(name), CHIPS[chip],
                                  tail_fraction=0.0)
        histogram = run_batch(cell, n, random.Random(seed))
        assert _signature(histogram) == expected

    def test_scenario_golden(self):
        name, chip, n, seed, expected = DOT_GOLDEN
        cell = compile_batch_cell(get_scenario(name).test(), CHIPS[chip],
                                  intensity=100.0, tail_fraction=0.0)
        histogram = run_batch(cell, n, random.Random(seed))
        assert _signature(histogram) == expected

    @pytest.mark.parametrize("name,chip", (("mp", "Titan"), ("sb", "GTX5")))
    def test_plan_roundtrip_is_stream_neutral(self, name, chip):
        """A cell rebuilt from its pickled plan draws the same stream."""
        test = library.build(name)
        fresh = compile_batch_cell(test, CHIPS[chip], tail_fraction=0.0)
        replayed = compile_batch_cell(test, CHIPS[chip], tail_fraction=0.0,
                                      plan=fresh.plan())
        a = run_batch(fresh, 2000, random.Random(3))
        b = run_batch(replayed, 2000, random.Random(3))
        assert a.counts == b.counts


@requires_numpy
class TestTailParity:
    """The hand-off changes the RNG stream, never the distribution."""

    @pytest.mark.parametrize("name,chip", SPIN_CELLS)
    def test_spin_scenarios_tail_vs_lockstep_and_fast(self, name, chip):
        runs, seed = 4000, 0
        test = get_scenario(name).test()
        profile = CHIPS[chip]
        tailed = compile_batch_cell(test, profile, intensity=100.0,
                                    tail_fraction=0.25)
        lockstep = compile_batch_cell(test, profile, intensity=100.0,
                                      tail_fraction=0.0)
        fast = compile_cell(test, profile, intensity=100.0)
        tailed_h = run_batch(tailed, runs, random.Random(seed))
        lockstep_h = run_batch(lockstep, runs, random.Random(seed))
        fast_h = run_batch(fast, runs, random.Random(seed))
        envelope = tvd_envelope(runs)
        assert tvd(tailed_h.counts, lockstep_h.counts, runs) <= envelope
        assert tvd(tailed_h.counts, fast_h.counts, runs) <= envelope
        for other in (lockstep_h, fast_h):
            losses = _losses(tailed_h, test)
            other_losses = _losses(other, test)
            if max(losses, other_losses) >= 5:  # decisive mass only
                assert (losses > 0) == (other_losses > 0)


@requires_numpy
class TestTailDeterminism:
    def test_same_seed_reproduces(self):
        test = get_scenario("dot-cbe").test()
        for _ in range(2):
            cell = compile_batch_cell(test, CHIPS["Titan"], intensity=100.0,
                                      tail_fraction=0.1)
            histogram = run_batch(cell, 3000, random.Random(7))
            if _ == 0:
                first = histogram.counts
        assert histogram.counts == first

    def test_jobs_and_executor_invariant(self):
        kwargs = dict(runs=600, seed=3, engine="batch", batch_tail=0.2)
        serial = app_session(cache=False, shard_size=150)
        threaded = app_session(cache=False, shard_size=150, jobs=3)
        process = app_session(cache=False, shard_size=150, jobs=2,
                              executor="process")
        results = [run_scenario("ticket", "TesC", session=session, **kwargs)
                   for session in (serial, threaded, process)]
        assert (results[0].histogram.counts == results[1].histogram.counts
                == results[2].histogram.counts)
        assert serial.stats.shards_executed == 4  # ceil(600 / 150)


class TestBatchTailKnob:
    def test_default_and_env_and_explicit(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_TAIL", raising=False)
        assert resolve_batch_tail(None) == DEFAULT_BATCH_TAIL
        monkeypatch.setenv("REPRO_BATCH_TAIL", "0.25")
        assert resolve_batch_tail(None) == 0.25
        assert resolve_batch_tail(0.4) == 0.4
        assert resolve_batch_tail("0.125") == 0.125

    @pytest.mark.parametrize("value", (BATCH_TAIL_RANGE[0],
                                       BATCH_TAIL_RANGE[1], 0.05))
    def test_endpoints_accepted(self, value):
        assert resolve_batch_tail(value) == value

    @pytest.mark.parametrize("value", ("junk", -0.1, 0.9, "2"))
    def test_rejects_naming_the_range(self, value):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_batch_tail(value)
        assert "[0, 0.5]" in str(excinfo.value)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TAIL", "lots")
        with pytest.raises(ConfigurationError):
            resolve_batch_tail(None)

    def test_excluded_from_fingerprints(self):
        test = library.build("mp")
        run_a = RunSpec.make(test, "Titan", iterations=100, batch_tail=0.0)
        run_b = run_a.with_batch_tail(0.3)
        assert run_b.batch_tail == 0.3
        assert run_a.fingerprint() == run_b.fingerprint()
        app_a = ScenarioSpec.make("ticket", "TesC", runs=100, batch_tail=0.0)
        app_b = app_a.with_batch_tail(0.3)
        assert app_a.fingerprint() == app_b.fingerprint()

    def test_in_cache_signature_only_for_batch(self):
        test = library.build("mp")
        sim = SimBackend()
        batch_a = RunSpec.make(test, "Titan", iterations=100, engine="batch",
                               batch_tail=0.0)
        batch_b = batch_a.with_batch_tail(0.3)
        assert (sim.cache_signature(batch_a)
                != sim.cache_signature(batch_b))
        fast_a = batch_a.with_engine("fast")
        fast_b = batch_b.with_engine("fast")
        assert sim.cache_signature(fast_a) == sim.cache_signature(fast_b)
        app = AppBackend()
        spec_a = ScenarioSpec.make("ticket", "TesC", runs=100,
                                   engine="batch", batch_tail=0.0)
        spec_b = spec_a.with_batch_tail(0.3)
        assert app.cache_signature(spec_a) != app.cache_signature(spec_b)
        assert (app.cache_signature(spec_a.with_engine("fast"))
                == app.cache_signature(spec_b.with_engine("fast")))

    def test_session_rejects_junk(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Session(batch_tail="junk")


@requires_numpy
class TestPlanCache:
    def test_roundtrip_and_stats(self, tmp_path):
        store = plan_store(str(tmp_path / "plans"))
        signature = plan_signature("sim-batch", 1, "litmus", "chip", 11)
        assert store.get(signature) is None
        test = library.build("mp")
        plan = compile_batch_cell(test, CHIPS["Titan"]).plan()
        store.put(signature, plan)
        retrieved = store.get(signature)
        # Plan payloads hold analysis objects without __eq__ — check
        # the round-trip structurally and by replaying the stream.
        assert retrieved is not None
        assert retrieved["version"] == plan["version"]
        assert len(retrieved["threads"]) == len(plan["threads"])
        replayed = compile_batch_cell(test, CHIPS["Titan"], plan=retrieved)
        fresh = compile_batch_cell(test, CHIPS["Titan"])
        assert (run_batch(replayed, 1500, random.Random(2)).counts
                == run_batch(fresh, 1500, random.Random(2)).counts)
        assert store.consume_stats() == {"plan_cache_hits": 1,
                                         "plan_cache_misses": 1}
        assert store.consume_stats() is None  # deltas drain

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        directory = str(tmp_path / "plans")
        store = plan_store(directory)
        signature = plan_signature("x")
        store.put(signature, {"version": 1})
        path = next(os.path.join(directory, name)
                    for name in os.listdir(directory))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert store.get(signature) is None

    def test_signature_separates_content(self):
        assert plan_signature("a", 1) != plan_signature("a", 2)
        assert plan_signature("a", 1) == plan_signature("a", 1)

    def test_in_process_hit_and_spec_result_stats(self, tmp_path):
        session = app_session(cache_dir=str(tmp_path))
        spec_a = ScenarioSpec.make("ticket", "TesC", runs=200,
                                   engine="batch", batch_tail=0.05)
        # Same lowering (scenario/chip/intensity), different memo and
        # cache keys — the second lowering must hit the shared store.
        spec_b = spec_a.with_batch_tail(0.2)
        result_a, result_b = session.run_specs([spec_a, spec_b])
        assert result_a.stats["plan_cache_misses"] >= 1
        assert result_b.stats["plan_cache_hits"] >= 1
        assert session.stats.plan_cache_hits >= 1
        assert session.stats.plan_cache_misses >= 1
        cached = session.run_specs([spec_a])[0]
        assert cached.cached and cached.stats is None

    def test_process_pool_workers_hit_shared_store(self, tmp_path):
        cache_dir = str(tmp_path)
        warmup = app_session(cache_dir=cache_dir)
        run_scenario("dot-cbe", "Titan", runs=200, seed=1, engine="batch",
                     session=warmup)
        assert warmup.stats.plan_cache_misses >= 1
        pooled = app_session(cache_dir=cache_dir, jobs=2,
                             executor="process", shard_size=100)
        run_scenario("dot-cbe", "Titan", runs=200, seed=2, engine="batch",
                     session=pooled)
        assert pooled.stats.plan_cache_hits >= 1
        assert pooled.stats.plan_cache_misses == 0
