"""Tests for the relation algebra, including hypothesis property tests."""

from hypothesis import given, strategies as st

from repro.model.events import Event, init_write
from repro.model.relation import Relation


def _events(n):
    return [Event(eid=i, tid=0, kind="R", po_index=i, loc="x", value=0)
            for i in range(n)]


EVENTS = _events(6)


def _pairs(indices):
    return [(EVENTS[a], EVENTS[b]) for a, b in indices]


# Strategy: relations over a fixed 6-event universe.
pair_indices = st.tuples(st.integers(0, 5), st.integers(0, 5))
relations = st.sets(pair_indices, max_size=15).map(
    lambda s: Relation(_pairs(s)))


class TestBasicAlgebra:
    def test_union(self):
        r = Relation(_pairs([(0, 1)])) | Relation(_pairs([(1, 2)]))
        assert len(r) == 2

    def test_intersection(self):
        r = Relation(_pairs([(0, 1), (1, 2)])) & Relation(_pairs([(1, 2)]))
        assert r == Relation(_pairs([(1, 2)]))

    def test_difference(self):
        r = Relation(_pairs([(0, 1), (1, 2)])) - Relation(_pairs([(1, 2)]))
        assert r == Relation(_pairs([(0, 1)]))

    def test_composition(self):
        r = Relation(_pairs([(0, 1)])) >> Relation(_pairs([(1, 2)]))
        assert r == Relation(_pairs([(0, 2)]))

    def test_composition_no_match(self):
        r = Relation(_pairs([(0, 1)])) >> Relation(_pairs([(2, 3)]))
        assert r.is_empty()

    def test_inverse(self):
        r = ~Relation(_pairs([(0, 1)]))
        assert r == Relation(_pairs([(1, 0)]))

    def test_from_order(self):
        r = Relation.from_order(EVENTS[:3])
        assert len(r) == 3  # (0,1), (0,2), (1,2)
        assert (EVENTS[0], EVENTS[2]) in r

    def test_successors_predecessors(self):
        r = Relation(_pairs([(0, 1), (0, 2)]))
        assert r.successors(EVENTS[0]) == {EVENTS[1], EVENTS[2]}
        assert r.predecessors(EVENTS[2]) == {EVENTS[0]}


class TestCycles:
    def test_empty_is_acyclic(self):
        assert Relation().is_acyclic()

    def test_self_loop_is_cycle(self):
        assert not Relation(_pairs([(0, 0)])).is_acyclic()

    def test_two_cycle(self):
        r = Relation(_pairs([(0, 1), (1, 0)]))
        cycle = r.find_cycle()
        assert cycle is not None
        assert set(cycle) == {EVENTS[0], EVENTS[1]}

    def test_long_chain_acyclic(self):
        r = Relation(_pairs([(0, 1), (1, 2), (2, 3), (3, 4)]))
        assert r.is_acyclic()

    def test_cycle_found_in_larger_graph(self):
        r = Relation(_pairs([(0, 1), (1, 2), (2, 3), (3, 1), (4, 5)]))
        cycle = r.find_cycle()
        assert cycle is not None
        assert set(cycle) <= {EVENTS[1], EVENTS[2], EVENTS[3]}

    def test_cycle_is_closed_walk(self):
        r = Relation(_pairs([(0, 1), (1, 2), (2, 0)]))
        cycle = r.find_cycle()
        for i, event in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            assert (event, nxt) in r


class TestClosures:
    def test_transitive_closure(self):
        r = Relation(_pairs([(0, 1), (1, 2)])).transitive_closure()
        assert (EVENTS[0], EVENTS[2]) in r

    def test_reflexive_closure(self):
        r = Relation(_pairs([(0, 1)])).reflexive_closure(EVENTS[:2])
        assert (EVENTS[0], EVENTS[0]) in r
        assert (EVENTS[1], EVENTS[1]) in r


class TestProperties:
    @given(relations)
    def test_inverse_involution(self, r):
        assert ~~r == r

    @given(relations, relations)
    def test_union_commutes(self, a, b):
        assert a | b == b | a

    @given(relations, relations)
    def test_de_morgan_intersection_via_pairs(self, a, b):
        assert (a & b).pairs == a.pairs & b.pairs

    @given(relations)
    def test_transitive_closure_is_transitive(self, r):
        closure = r.transitive_closure()
        for a, b in closure:
            for c, d in closure:
                if b is c:
                    assert (a, d) in closure

    @given(relations)
    def test_transitive_closure_idempotent(self, r):
        once = r.transitive_closure()
        assert once.transitive_closure() == once

    @given(relations)
    def test_closure_preserves_acyclicity(self, r):
        assert r.is_acyclic() == r.transitive_closure().is_acyclic()

    @given(relations, relations)
    def test_composition_within_bounds(self, a, b):
        composed = a >> b
        sources = {pair[0] for pair in a}
        targets = {pair[1] for pair in b}
        for s, t in composed:
            assert s in sources
            assert t in targets

    @given(relations)
    def test_find_cycle_consistent_with_is_acyclic(self, r):
        assert (r.find_cycle() is None) == r.is_acyclic()


class TestEventHelpers:
    def test_init_write(self):
        event = init_write(0, "x", 7)
        assert event.is_init and event.is_write
        assert event.loc == "x" and event.value == 7

    def test_pretty_contains_location(self):
        event = Event(eid=0, tid=1, kind="W", loc="y", value=3, cop="cg")
        assert "W.cg y=3" in event.pretty()
