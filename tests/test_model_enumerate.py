"""Tests for candidate-execution enumeration."""

import pytest

from repro.errors import EnumerationError
from repro.litmus import library, parse_condition, parse_litmus
from repro.litmus.condition import FinalState
from repro.model.enumerate import allowed_final_states, enumerate_executions


def _finals(test):
    return allowed_final_states(enumerate_executions(test))


class TestBasicCounts:
    def test_sb_has_four_rf_choices(self):
        assert len(enumerate_executions(library.build("sb"))) == 4

    def test_mp_has_four_rf_choices(self):
        assert len(enumerate_executions(library.build("mp"))) == 4

    def test_corr_four_combinations(self):
        assert len(enumerate_executions(library.build("coRR"))) == 4

    def test_max_executions_cap_errors_by_default(self):
        # A silently truncated enumeration under-approximates the allowed
        # set (on mp, max_executions=2 used to return 2 of 4 allowed
        # outcomes with no signal) — the default policy now refuses.
        with pytest.raises(EnumerationError, match="under-approximated"):
            enumerate_executions(library.build("sb"), max_executions=2)

    def test_max_executions_truncate_policy_is_flagged(self):
        executions = enumerate_executions(library.build("sb"),
                                          max_executions=2,
                                          on_limit="truncate")
        assert len(executions) == 2
        assert executions.truncated

    def test_cap_equal_to_total_is_complete(self):
        executions = enumerate_executions(library.build("sb"),
                                          max_executions=4)
        assert len(executions) == 4
        assert not executions.truncated

    def test_unbounded_enumeration_not_truncated(self):
        assert not enumerate_executions(library.build("mp")).truncated

    def test_truncated_allowed_set_under_approximates(self):
        test = library.build("mp")
        full = allowed_final_states(enumerate_executions(test))
        partial = allowed_final_states(
            enumerate_executions(test, max_executions=2,
                                 on_limit="truncate"))
        assert partial < full  # strictly fewer states: the bug's hazard

    def test_bad_on_limit_rejected(self):
        with pytest.raises(ValueError):
            enumerate_executions(library.build("sb"), on_limit="ignore")

    def test_addr_dependent_store_candidates_not_dropped(self):
        # lb+addr: T1's store address is an addr-dependency computation,
        # symbolic until T1's read is bound.  The rf solver must bind
        # T1's read first — solving T0's read against only the resolved
        # (init) candidate used to drop every execution where T0 reads
        # from T1's store, under-approximating the allowed set and
        # producing false soundness violations.
        from repro.diy import Cycle, cycle_to_test, dp, po, rfe

        test = cycle_to_test(Cycle([po("R", "W"), rfe(),
                                    dp("addr", "W"), rfe()]))
        finals = {(state.reg(0, "r0"), state.reg(1, "r0"))
                  for state in allowed_final_states(
                      enumerate_executions(test))}
        assert finals == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_double_dependency_candidates_not_dropped(self):
        # lb+addr+addr: BOTH stores' addresses are dependency
        # computations, so whichever read is solved first sees the other
        # store unresolved.  Provisional candidates (with the address
        # check deferred) must keep those executions; ordering alone
        # cannot.
        from repro.diy import Cycle, cycle_to_test, dp, rfe

        test = cycle_to_test(Cycle([dp("addr", "W"), rfe(),
                                    dp("addr", "W"), rfe()]))
        finals = {(state.reg(0, "r0"), state.reg(1, "r0"))
                  for state in allowed_final_states(
                      enumerate_executions(test))}
        assert finals == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_thin_air_value_cycle_discarded_not_invented(self):
        # lb+data+data: each store's *value* needs the other thread's
        # read.  The rf combination where both reads source the
        # dependent stores is a dp|rf cycle — values out of thin air —
        # which no operational execution realises and no-thin-air
        # forbids; the enumerator discards it and keeps the three
        # realisable combinations.
        from repro.diy import Cycle, cycle_to_test, dp, rfe

        test = cycle_to_test(Cycle([dp("data", "W"), rfe(),
                                    dp("data", "W"), rfe()]))
        executions = enumerate_executions(test)
        assert len(executions) == 3
        finals = {(state.reg(0, "r0"), state.reg(1, "r0"))
                  for state in allowed_final_states(executions)}
        assert finals == {(0, 0), (0, 1), (1, 0)}

    def test_model_backend_refuses_truncated_enumeration(self):
        from repro.api import ModelBackend, RunSpec

        backend = ModelBackend(max_executions=2)
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=100)
        with pytest.raises(EnumerationError):
            backend.run(spec)
        # A cap the enumeration fits inside behaves like no cap.
        roomy = ModelBackend(max_executions=64)
        assert roomy.run(spec).counts == ModelBackend().run(spec).counts


class TestFinalStates:
    def test_sb_weak_outcome_is_candidate(self):
        test = library.build("sb")
        weak = FinalState.make({(0, "r2"): 0, (1, "r2"): 0}, {"x": 1, "y": 1})
        assert weak in _finals(test)

    def test_corr_outcomes(self):
        test = library.build("coRR")
        finals = {(s.reg(1, "r1"), s.reg(1, "r2")) for s in _finals(test)}
        assert finals == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_memory_final_values(self):
        test = library.build("mp")
        for state in _finals(test):
            assert state.loc("x") == 1
            assert state.loc("y") == 1

    def test_cas_success_updates_memory(self):
        test = library.build("cas-sl")
        # When T1's CAS acquires the lock (r1=0), m ends at 1 (locked by
        # T1); when it fails (r1=1, reads the initial locked value), the
        # final m may be 0 (T0's release last in coherence) or 1.
        finals = _finals(test)
        acquired = [s for s in finals if s.reg(1, "r1") == 0]
        assert acquired and all(s.loc("m") == 1 for s in acquired)

    def test_guarded_load_skipped_register_defaults_to_zero(self):
        test = library.build("cas-sl")
        failed = [s for s in _finals(test) if s.reg(1, "r1") == 1]
        assert failed
        assert all(s.reg(1, "r3") == 0 for s in failed)


class TestDependencies:
    def test_dlb_mp_data_dependency(self):
        # T0 of dlb-mp stores r2+1 where r2 was loaded: a data dependency.
        test = library.build("dlb-mp")
        execution = enumerate_executions(test)[0]
        t0_events = [e for e in execution.events if e.tid == 0]
        data = execution.relation("data")
        assert any(a.tid == 0 and b.tid == 0 and a.is_read and b.is_write
                   for a, b in data), t0_events

    def test_dlb_mp_control_dependency(self):
        # T1's guarded load is control-dependent on its first load.
        test = library.build("dlb-mp")
        witnesses = [e for e in enumerate_executions(test)
                     if test.condition.holds(e.final_state)]
        assert witnesses
        ctrl = witnesses[0].relation("ctrl")
        assert any(a.tid == 1 and b.tid == 1 and a.is_read and b.is_read
                   for a, b in ctrl)

    def test_address_dependency_from_manufactured_chain(self):
        # Fig. 13b: and/cvt/add chain from a load to the next load's address.
        text = r"""
        GPU_PTX dep
        { 0:.reg .s32 r1; 0:.reg .s32 r2; 0:.reg .b64 r3;
          0:.reg .b64 r4 = y; 0:.reg .s32 r5; 0:.reg .b64 r0 = x;
          1:.reg .s32 r9; }
         T0                          | T1               ;
         ld.cg.s32 r1, [r0]          | st.cg.s32 [x], 1 ;
         and.b32 r2, r1, 0x80000000  | st.cg.s32 [y], 1 ;
         cvt.u64.u32 r3, r2          |                  ;
         add.s32 r4, r4, r3          |                  ;
         ld.cg.s32 r5, [r4]          |                  ;
        ScopeTree (grid (cta (warp T0)) (cta (warp T1)))
        exists (0:r1=1 /\ 0:r5=0)
        """
        test = parse_litmus(text)
        executions = enumerate_executions(test)
        assert executions
        addr = executions[0].relation("addr")
        assert any(a.is_read and b.is_read for a, b in addr)

    def test_rmw_pairs_present(self):
        test = library.build("dlb-lb")
        for execution in enumerate_executions(test):
            rmw = execution.relation("rmw")
            for read, write in rmw:
                assert read.is_read and write.is_write
                assert read.tid == write.tid
                assert read.loc == write.loc


class TestAtomicity:
    def test_no_write_between_rmw_read_and_write(self):
        # For every execution of cas-sl, the CAS write (if present) is
        # coherence-immediately after the write its read read from.
        test = library.build("cas-sl")
        for execution in enumerate_executions(test):
            rf = {read: write for write, read in execution.rf}
            co = execution.co
            for read, write in execution.relation("rmw"):
                source = rf[read]
                between = [w for w in execution.writes
                           if w.loc == read.loc and w is not source
                           and w is not write
                           and (source, w) in co and (w, write) in co]
                assert between == []

    def test_exch_lock_handover(self):
        # exch-sl: both threads' exchanges are RMWs on m; atomicity holds.
        test = library.build("exch-sl")
        executions = enumerate_executions(test)
        assert executions
        weak = [e for e in executions if test.condition.holds(e.final_state)]
        assert weak, "stale read candidate must exist"


class TestControlFlowEnumeration:
    def test_branching_enumerates_both_paths(self):
        text = """
        GPU_PTX guard
        { 0:.reg .s32 r0; 0:.reg .pred p; 1:.reg .s32 r9; }
         T0                    | T1               ;
         ld.cg.s32 r0, [x]     | st.cg.s32 [x], 1 ;
         setp.eq.s32 p, r0, 1  |                  ;
         @p st.cg.s32 [y], 1   |                  ;
        ScopeTree (grid (cta (warp T0)) (cta (warp T1)))
        exists (y=1)
        """
        test = parse_litmus(text)
        finals = _finals(test)
        assert FinalState.make({}, {"x": 1, "y": 1}) in finals
        assert FinalState.make({}, {"x": 1, "y": 0}) in finals

    def test_loop_with_fuel_error(self):
        text = """
        GPU_PTX spin
        { 0:.reg .s32 r0; 1:.reg .s32 r9; }
         T0                    | T1               ;
         LOOP:                 | st.cg.s32 [x], 1 ;
         ld.cg.s32 r0, [x]     |                  ;
         setp.eq.s32 p, r0, 0  |                  ;
         @p bra LOOP           |                  ;
        ScopeTree (grid (cta (warp T0)) (cta (warp T1)))
        exists (0:r0=1)
        """
        test = parse_litmus(text)
        with pytest.raises(EnumerationError):
            enumerate_executions(test, fuel=16, on_fuel="error")
        executions = enumerate_executions(test, fuel=16, on_fuel="discard")
        assert executions  # the terminating unrollings survive
        assert any(test.condition.holds(e.final_state) for e in executions)

    def test_unconditional_branch_skips(self):
        text = """
        GPU_PTX jump
        { 0:.reg .s32 r0; }
         T0 ;
         bra END ;
         st.cg.s32 [x], 1 ;
         END: ;
        exists (x=0)
        """
        test = parse_litmus(text)
        finals = _finals(test)
        assert finals == {FinalState.make({}, {"x": 0})}


class TestScopeRelations:
    def test_intra_vs_inter_cta(self):
        intra = enumerate_executions(library.corr(placement="intra-cta"))[0]
        inter = enumerate_executions(library.corr(placement="inter-cta"))[0]
        intra_cta = intra.relation("cta")
        inter_cta = inter.relation("cta")
        cross_intra = [(a, b) for a, b in intra_cta
                       if a.tid == 0 and b.tid == 1]
        cross_inter = [(a, b) for a, b in inter_cta
                       if a.tid == 0 and b.tid == 1]
        assert cross_intra and not cross_inter

    def test_sys_is_universal(self):
        execution = enumerate_executions(library.build("mp"))[0]
        sys_rel = execution.relation("sys")
        n = len(execution.events)
        assert len(sys_rel) == n * (n - 1)

    def test_fence_relation_spans_fence_only(self):
        test = library.mp(fence0=None, fence1=None)
        execution = enumerate_executions(test)[0]
        assert len(execution.relation("membar.gl")) == 0
