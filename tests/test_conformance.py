"""Tests for the Sec. 5.4 conformance subsystem: the dual-backend
soundness pipeline, the report, streaming session execution and the
``repro-litmus soundness`` CLI."""

import pytest

from repro.api import (CellConformance, ConformanceReport, Session,
                      Violation, run_soundness, uniquify_tests)
from repro.cli import main
from repro.errors import ReproError
from repro.litmus import library
from repro.litmus.condition import FinalState


def _tests(*names):
    return [library.build(name) for name in names]


class TestRunSoundness:
    def test_ptx_model_sound_on_library_corpus(self):
        report = run_soundness(_tests("mp", "sb", "lb", "coRR"),
                               ["Titan", "GTX6"], iterations=400, seed=3)
        assert report.ok
        assert report.violations == []
        assert len(report.cells) == 4 * 2
        assert report.tests == ["mp", "sb", "lb", "coRR"]
        assert report.chips == ["Titan", "GTX6"]
        # Every test got a non-empty allowed set.
        assert all(count > 0 for count in report.allowed_counts.values())

    def test_model_enumerates_once_per_test_not_per_chip(self):
        report = run_soundness(_tests("mp", "sb"),
                               ["Titan", "GTX6", "GTX7"], iterations=200)
        assert report.model_stats["executed"] == 2
        assert report.sim_stats["executed"] == 6

    def test_injected_violation_is_reported_not_swallowed(self):
        # SC forbids mp's weak outcome; the simulated Titan observes it
        # under the paper's incantations — a deliberately wrong model
        # must surface as violations, not be silently merged away.
        report = run_soundness(_tests("mp"), ["Titan"], model="sc",
                               iterations=2000, seed=3)
        assert not report.ok
        assert report.violations
        violation = report.violations[0]
        assert violation.test == "mp" and violation.chip == "Titan"
        assert violation.count > 0
        assert "forbids" in violation.describe()
        assert any("mp on Titan" in line for line in report.violation_lines())
        # The unsound cell is flagged in the rendered grid.
        assert "forbidden" in report.summary_table()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ReproError, match="duplicate test name"):
            run_soundness(_tests("mp", "mp"), ["Titan"], iterations=100)

    def test_uniquify_tests_renames_deterministically(self):
        family = uniquify_tests(_tests("mp", "sb", "mp", "mp"))
        assert [test.name for test in family] == ["mp", "sb", "mp-2", "mp-3"]
        # First occurrence keeps its identity (same object, same text).
        assert family[0].name == "mp"
        report = run_soundness(family, ["Titan"], iterations=100)
        assert len(report.cells) == 4

    def test_streaming_chunks_cover_whole_corpus(self):
        tests = _tests("mp", "sb", "lb", "coRR", "dlb-lb")
        report = run_soundness(tests, ["Titan"], iterations=100,
                               chunk_size=2)
        assert len(report.cells) == 5
        assert report.tests == [test.name for test in tests]

    def test_accepts_generator_corpus(self):
        report = run_soundness((library.build(name) for name in ("mp", "sb")),
                               ["Titan"], iterations=100, chunk_size=1)
        assert len(report.cells) == 2

    def test_second_run_served_from_cache(self, tmp_path):
        cache_dir = str(tmp_path / "soundness-cache")
        first = run_soundness(_tests("mp", "sb"), ["Titan", "GTX6"],
                              iterations=200, cache_dir=cache_dir)
        second = run_soundness(_tests("mp", "sb"), ["Titan", "GTX6"],
                               iterations=200, cache_dir=cache_dir)
        assert first.sim_stats["executed"] == 4
        assert second.sim_stats["executed"] == 0
        assert second.sim_stats["cache_hits"] == 4
        assert second.model_stats["executed"] == 0
        assert second.cached_cells == 4
        # Identical verdicts either way.
        assert first.ok and second.ok
        assert [cell.observations for cell in first.cells] == \
            [cell.observations for cell in second.cells]

    def test_shared_pool_parallel_matches_serial(self):
        serial = run_soundness(_tests("mp", "sb"), ["Titan"],
                               iterations=300, seed=5)
        parallel = run_soundness(_tests("mp", "sb"), ["Titan"],
                                 iterations=300, seed=5, jobs=4)
        assert [cell.observations for cell in serial.cells] == \
            [cell.observations for cell in parallel.cells]

    def test_needs_a_chip(self):
        with pytest.raises(ReproError):
            run_soundness(_tests("mp"), [], iterations=100)


class TestConformanceReport:
    def _cell(self, test="mp", chip="Titan", observations=3,
              violations=()):
        return CellConformance(
            test=test, chip=chip, incantations="stress", iterations=1000,
            observations=observations, per_100k=observations * 100.0,
            distinct_states=4, cached=False, violations=tuple(violations))

    def test_coverage_by_chip_and_incantations(self):
        report = ConformanceReport(model="model:ptx")
        report.add_test("mp", 4)
        report.add_cell(self._cell(chip="Titan"))
        report.add_cell(self._cell(chip="GTX6", observations=0))
        by_chip = report.coverage_by_chip()
        assert by_chip["Titan"]["weak"] == 1
        assert by_chip["GTX6"]["weak"] == 0
        assert report.coverage_by_incantations()["stress"]["cells"] == 2
        assert "Titan" in report.coverage_table()
        assert "stress" in report.incantation_table()

    def test_summary_table_elides_sound_rows_but_keeps_violations(self):
        state = FinalState.make({(0, "r1"): 1}, {"x": 1})
        report = ConformanceReport(model="model:ptx")
        for index in range(6):
            name = "t%d" % index
            report.add_test(name, 2)
            violations = ()
            if index == 5:
                violations = (Violation(test=name, chip="Titan",
                                        state=state, count=2),)
            report.add_cell(self._cell(test=name, violations=violations))
        table = report.summary_table(max_rows=2)
        assert "t0" in table and "t1" in table
        assert "t5" in table            # unsound row survives the cap
        assert "t3" not in table
        assert "elided" in table

    def test_summary_counts(self):
        report = ConformanceReport(model="model:ptx")
        report.add_test("mp", 4)
        report.add_cell(self._cell())
        assert "1 tests x 1 chips" in report.summary()
        assert report.total_iterations == 1000


class TestSessionStreaming:
    def test_run_stream_matches_run_specs(self):
        session = Session(jobs=1, cache=False)
        specs = list(session.plan(_tests("mp", "sb"), ["Titan", "GTX6"],
                                  iterations=150, seed=2))
        batch = session.run_specs(specs)
        streamed = list(Session(jobs=1, cache=False).run_stream(
            iter(specs), chunk_size=3))
        assert [result.histogram.counts for result in batch] == \
            [result.histogram.counts for result in streamed]

    def test_plan_is_lazy(self):
        session = Session(jobs=1, cache=False)

        def corpus():
            yield library.build("mp")
            raise AssertionError("second test must not be built eagerly")

        plan = session.plan(corpus(), ["Titan"], iterations=100)
        first = next(plan)
        assert first.test.name == "mp"

    def test_stream_rejects_bad_chunk_size(self):
        session = Session(jobs=1, cache=False)
        with pytest.raises(ReproError):
            list(session.run_stream([], chunk_size=0))

    def test_external_pool_not_shut_down(self):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=2) as pool:
            session = Session(jobs=2, cache=False, pool=pool)
            first = session.run(library.build("mp"), "Titan", iterations=100)
            # A second plan on the same pool still works (the session
            # must not have closed it).
            second = session.run(library.build("sb"), "Titan",
                                 iterations=100)
        assert first.histogram.total == second.histogram.total == 100


class TestSoundnessCli:
    def test_soundness_subcommand(self, capsys):
        code = main(["soundness", "--length", "3", "--max-tests", "4",
                     "--chips", "Titan", "GTX6", "--iterations", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "soundness vs model:ptx" in out
        assert "0 violations" in out
        assert "model session:" in out

    def test_soundness_unsound_model_exits_nonzero(self, capsys):
        # SC is deliberately too strong for GPU observations.
        code = main(["soundness", "--length", "3", "--max-tests", "4",
                     "--chips", "Titan", "--iterations", "2000",
                     "--model", "sc", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION:" in out

    def test_soundness_empty_corpus_exits(self):
        with pytest.raises(SystemExit):
            main(["soundness", "--length", "2", "--max-tests", "0",
                  "--chips", "Titan"])

    def test_generate_is_name_sorted_and_shaped(self, capsys):
        assert main(["generate", "--length", "3", "--fences", "none"]) == 0
        out = capsys.readouterr().out
        assert "membar" not in out
        names = [line.split()[1] for line in out.splitlines()
                 if line.startswith("GPU_PTX")]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_generate_scope_restriction(self, capsys):
        assert main(["generate", "--length", "3", "--fences", "none",
                     "--scopes", "dev"]) == 0
        dev_only = capsys.readouterr().out
        # cta-scoped pools produce intra-CTA placements the dev pool lacks.
        assert main(["generate", "--length", "3", "--fences", "none",
                     "--scopes", "cta"]) == 0
        cta_only = capsys.readouterr().out
        assert dev_only != cta_only

    def test_generate_max_alias_still_works(self, capsys):
        assert main(["generate", "--length", "3", "--max", "2"]) == 0
        out = capsys.readouterr()
        assert out.err.strip().endswith("2 tests")
