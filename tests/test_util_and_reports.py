"""Tests for the small shared utilities and report formatting."""

import pytest

from repro._util import (HIGH_BIT32, format_table, to_signed32, wrap32,
                         wrap64)
from repro.harness import comparison_line, figure_table, run_paper_config
from repro.litmus import library


class TestIntegerHelpers:
    def test_wrap32(self):
        assert wrap32(0xFFFFFFFF + 1) == 0
        assert wrap32(-1) == 0xFFFFFFFF

    def test_wrap64(self):
        assert wrap64(2 ** 64) == 0

    def test_to_signed32(self):
        assert to_signed32(0xFFFFFFFF) == -1
        assert to_signed32(5) == 5
        assert to_signed32(HIGH_BIT32) == -(2 ** 31)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "----" in lines[1]

    def test_ragged_rows(self):
        text = format_table(["a"], [["x", "extra"]])
        assert "extra" in text

    def test_non_string_cells(self):
        assert "42" in format_table(["n"], [[42]])


class TestReportHelpers:
    def test_figure_table_includes_paper_numbers(self):
        test = library.build("mp")
        result = run_paper_config(test, "GTX7", iterations=50, seed=0)
        text = figure_table(
            "t", [("mp", "mp")], ["GTX7"], {("mp", "GTX7"): result},
            paper={("mp", "GTX7"): 3})
        assert "paper 3" in text

    def test_figure_table_missing_cell_is_na(self):
        text = figure_table("t", [("mp", "mp")], ["GTX7"], {})
        assert "n/a" in text

    def test_comparison_line_shapes(self):
        assert "shape-ok" in comparison_line("mp", "Titan", 10.0, 100)
        assert "SHAPE-MISMATCH" in comparison_line("mp", "Titan", 0.0, 100)
        assert "paper n/a" in comparison_line("mp", "Titan", 5.0, "n/a")


class TestPackageSurface:
    def test_version(self):
        import repro
        assert repro.__version__

    def test_top_level_exports(self):
        import repro
        assert callable(repro.parse_litmus)
        assert callable(repro.write_litmus)

    def test_all_modules_importable(self):
        import importlib
        for module in [
            "repro.ptx", "repro.hierarchy", "repro.litmus", "repro.model",
            "repro.model.cat", "repro.model.models", "repro.model.operational",
            "repro.diy", "repro.sim", "repro.harness", "repro.compiler",
            "repro.apps", "repro.data", "repro.cli",
        ]:
            importlib.import_module(module)
