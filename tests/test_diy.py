"""Tests for the diy test generator: edges, cycles, synthesis, naming."""

import pytest

from repro.diy import (Cycle, SAME_CTA, classify, coe, cycle_to_test,
                       cycles_up_to, default_pool, dp, enumerate_cycles,
                       fenced, fre, generate_tests, idiom_of, parse_edge, po,
                       rfe, try_cycle)
from repro.errors import GenerationError
from repro.model.enumerate import enumerate_executions
from repro.model.models import ptx_model, sc_model
from repro.ptx.types import Scope

PTX = ptx_model()
SC = sc_model()


class TestEdges:
    def test_names(self):
        assert po("W", "W").name == "PodWW"
        assert po("R", "R", same_loc=True).name == "PosRR"
        assert dp("addr", "R").name == "DpAddrdR"
        assert fenced(Scope.GL, "W", "W").name == "FenceddWW.gl"
        assert rfe().name == "Rfe"
        assert rfe(SAME_CTA).name == "Rfe-cta"

    def test_parse_round_trip(self):
        for edge in default_pool():
            assert parse_edge(edge.name) == edge

    def test_dependencies_must_start_at_reads(self):
        with pytest.raises(GenerationError):
            dp("addr", "R").__class__("Dp", "W", "R", False, True, dep="addr")

    def test_communication_edges_same_location(self):
        assert rfe().same_loc and fre().same_loc and coe().same_loc

    def test_parse_unknown(self):
        with pytest.raises(GenerationError):
            parse_edge("Frobnicate")


class TestCycles:
    def test_mp_cycle_places_two_threads_two_locations(self):
        cycle = Cycle([po("W", "W"), rfe(), po("R", "R"), fre()])
        assert cycle.n_threads == 2
        assert cycle.n_locations == 2

    def test_corr_cycle_single_location(self):
        cycle = Cycle([rfe(), po("R", "R", same_loc=True), fre()])
        assert cycle.n_locations == 1
        assert cycle.n_threads == 2

    def test_normalisation_puts_external_edge_last(self):
        cycle = Cycle([rfe(), po("R", "R"), fre(), po("W", "W")])
        assert not cycle.edges[-1].same_thread

    def test_direction_mismatch_rejected(self):
        assert try_cycle([po("W", "R"), rfe()]) is None  # R then W->R

    def test_single_external_edge_rejected(self):
        assert try_cycle([po("W", "R"), fre()]) is None

    def test_single_location_change_rejected(self):
        assert try_cycle([po("W", "W"), coe(), fre(), rfe()]) is None

    def test_scope_consistency_rejected(self):
        # Three threads: T0-T1 same CTA, T1-T2 same CTA, T2-T0 different
        # CTA is contradictory.
        edges = [rfe(SAME_CTA), po("R", "W"), rfe(SAME_CTA), po("R", "W"),
                 rfe(), po("R", "W")]
        assert try_cycle(edges) is None

    def test_cta_groups(self):
        cycle = Cycle([po("W", "W"), rfe(SAME_CTA), po("R", "R"),
                       fre(SAME_CTA)])
        assert cycle.cta_groups == [0, 0]
        inter = Cycle([po("W", "W"), rfe(), po("R", "R"), fre()])
        assert inter.cta_groups == [0, 1]

    def test_enumeration_dedupes_rotations(self):
        pool = [po("W", "W"), po("R", "R"), rfe(), fre()]
        cycles = enumerate_cycles(pool, 4)
        names = [c.canonical() for c in cycles]
        assert len(names) == len(set(names))

    def test_cycles_up_to_length(self):
        pool = [po("R", "R", same_loc=True), rfe(), fre()]
        cycles = cycles_up_to(pool, 3)
        assert any(classify(c) == "coRR" for c in cycles)


class TestNaming:
    @pytest.mark.parametrize("edges,expected", [
        ([po("W", "W"), rfe(), po("R", "R"), fre()], "mp"),
        ([po("W", "R"), fre(), po("W", "R"), fre()], "sb"),
        ([po("R", "W"), rfe(), po("R", "W"), rfe()], "lb"),
        ([rfe(), po("R", "R", same_loc=True), fre()], "coRR"),
        ([po("W", "W"), coe(), po("W", "W"), coe()], "2+2w"),
        ([po("W", "W"), rfe(), po("R", "W"), coe()], "s"),
        ([po("W", "W"), coe(), po("W", "R"), fre()], "r"),
    ])
    def test_classic_names(self, edges, expected):
        assert classify(Cycle(edges)) == expected

    def test_decorated_name(self):
        cycle = Cycle([fenced(Scope.GL, "W", "W"), rfe(), dp("addr", "R"),
                       fre()])
        assert classify(cycle) == "mp+membar.gl+addr"
        assert idiom_of(cycle) == "mp"

    def test_scope_annotation_ignored_for_naming(self):
        intra = Cycle([po("W", "W"), rfe(SAME_CTA), po("R", "R"),
                       fre(SAME_CTA)])
        assert classify(intra) == "mp"


class TestSynthesis:
    def test_mp_test_structure(self):
        test = cycle_to_test(Cycle([po("W", "W"), rfe(), po("R", "R"), fre()]))
        assert test.n_threads == 2
        assert test.name == "mp"
        assert test.scope_tree.classify() == "inter-cta"
        # The generated condition pins the Rfe read to 1 and Fre read to 0.
        assert "=1" in str(test.condition) and "=0" in str(test.condition)

    def test_generated_mp_matches_paper_verdicts(self):
        test = cycle_to_test(Cycle([po("W", "W"), rfe(), po("R", "R"), fre()]))
        assert PTX.allows_condition(test)
        assert not SC.allows_condition(test)

    def test_fenced_dependency_variant_forbidden(self):
        cycle = Cycle([fenced(Scope.GL, "W", "W"), rfe(), dp("addr", "R"),
                       fre()])
        assert not PTX.allows_condition(cycle_to_test(cycle))

    def test_intra_cta_fence_allows_inter_cta_weakness(self):
        # mp with cta fences inter-CTA: allowed by the PTX model.
        cycle = Cycle([fenced(Scope.CTA, "W", "W"), rfe(),
                       fenced(Scope.CTA, "R", "R"), fre()])
        assert PTX.allows_condition(cycle_to_test(cycle))
        intra = Cycle([fenced(Scope.CTA, "W", "W"), rfe(SAME_CTA),
                       fenced(Scope.CTA, "R", "R"), fre(SAME_CTA)])
        assert not PTX.allows_condition(cycle_to_test(intra))

    def test_coe_cycle_condition_uses_memory(self):
        cycle = Cycle([po("W", "W"), coe(), po("W", "W"), coe()])
        test = cycle_to_test(cycle)
        assert test.condition.locations()

    def test_ctrl_dependency_emits_guard(self):
        cycle = Cycle([po("W", "W"), rfe(), dp("ctrl", "R"), fre()])
        test = cycle_to_test(cycle)
        guarded = [i for i in test.threads[1] if i.guard is not None]
        assert guarded

    def test_generated_tests_enumerable(self):
        for cycle in [Cycle([po("W", "W"), rfe(), po("R", "R"), fre()]),
                      Cycle([rfe(), po("R", "R", same_loc=True), fre()]),
                      Cycle([po("W", "W"), rfe(), dp("data", "W"), coe()])]:
            test = cycle_to_test(cycle)
            executions = enumerate_executions(test)
            assert executions
            assert any(test.condition.holds(e.final_state) for e in executions)

    def test_shared_region_rejected_across_ctas(self):
        cycle = Cycle([po("W", "W"), rfe(), po("R", "R"), fre()])
        with pytest.raises(GenerationError):
            cycle_to_test(cycle, regions={"x": "shared"})

    def test_shared_region_allowed_intra_cta(self):
        cycle = Cycle([po("W", "W"), rfe(SAME_CTA), po("R", "R"),
                       fre(SAME_CTA)])
        test = cycle_to_test(cycle, regions={"x": "shared"})
        assert str(test.space_of("x")) == "shared"


class TestFamilyGeneration:
    def test_generate_family(self):
        pool = default_pool(fences=(Scope.GL,))
        tests = generate_tests(pool, max_length=4, max_tests=120)
        assert len(tests) == 120
        names = [test.name for test in tests]
        assert len(set(names)) >= 30  # diverse family

    def test_family_includes_classics(self):
        pool = [po("W", "W"), po("R", "R"), po("W", "R"), po("R", "W"),
                rfe(), fre()]
        tests = generate_tests(pool, max_length=4)
        idioms = {test.idiom for test in tests}
        assert {"mp", "sb", "lb"} <= idioms

    def test_generated_tests_validate(self):
        pool = default_pool(fences=(Scope.GL,))
        for test in generate_tests(pool, max_length=3, max_tests=40):
            assert test.validate() == [], test.name


class TestNameUniqueness:
    """Distinct cycles classifying to one idiom must not share a name
    (they would silently merge rows in name-keyed campaign tables)."""

    def test_length3_collision_gets_deterministic_suffix(self):
        # The default pool at max_length=3 yields 4 distinct bodies; the
        # inter- and intra-CTA coRR cycles both classify as "coRR".
        tests = generate_tests(default_pool(), max_length=3)
        names = [test.name for test in tests]
        assert len(names) == len(set(names))
        assert "coRR" in names and "coRR-2" in names
        from repro.litmus.writer import write_litmus
        bodies = {write_litmus(test) for test in tests}
        assert len(bodies) == len(tests)

    def test_full_length4_pool_names_unique(self):
        tests = generate_tests(default_pool(), max_length=4)
        names = [test.name for test in tests]
        assert len(names) == len(set(names))

    def test_suffixes_are_deterministic_across_runs(self):
        first = [t.name for t in generate_tests(default_pool(), max_length=3)]
        second = [t.name for t in generate_tests(default_pool(), max_length=3)]
        assert first == second

    def test_allocator_never_collides_with_taken_names(self):
        from repro.diy import NameAllocator

        allocator = NameAllocator()
        assert allocator.assign("mp-2") == "mp-2"
        assert allocator.assign("mp") == "mp"
        # The ordinal skips the already-taken "mp-2".
        assert allocator.assign("mp") == "mp-3"
        assert allocator.assign("mp") == "mp-4"
