"""Fast-path equivalence: the compiled model engine vs the reference.

The contract of the model-side fast path mirrors the sim-side one
(``tests/test_sim_compile.py``): for any test and model, the compiled
engine (:func:`repro.model.cat.compile_model` +
:func:`repro.model.enumerate.enumerate_allowed`) must produce the
*identical* allowed set, the identical ``truncated`` flag and the
identical :class:`~repro.errors.EnumerationError` behaviour as
enumerating every candidate execution and checking each against the
interpreted ``.cat`` text.  These tests enforce that contract across
the litmus library, every registered model, diy dependency corpora and
deep (length-6) cycles, plus the indexed-relation algebra itself, and
pin down the engine switch's plumbing through
``RunSpec``/``ModelBackend``/``Session``/CLI.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import ModelBackend, RunSpec, Session, make_backend
from repro.api.conformance import run_soundness, uniquify_tests
from repro.diy import coe, default_pool, enumerate_cycles, fre, generate_tests, po, rfe
from repro.diy.generate import cycle_to_test
from repro.errors import (ConfigurationError, EnumerationError,
                          GenerationError, ReproError)
from repro.litmus import library
from repro.model import (DEFAULT_MODEL_ENGINE, MODEL_ENGINES,
                         CompiledCatModel, EventIndex, IndexedRelation,
                         Relation, compile_model, enumerate_allowed,
                         enumerate_executions, resolve_model_engine)
from repro.model.cat import CatModel
from repro.model.events import Event
from repro.model.models import MODELS, load_model, ptx_model

LIBRARY_TESTS = sorted(library.PAPER_TESTS)
MODEL_NAMES = sorted(MODELS)


# ---------------------------------------------------------------------------
# Indexed relations vs pair-set relations.
# ---------------------------------------------------------------------------

def _events(n):
    return [Event(eid=i, tid=0, kind="R", po_index=i, loc="x", value=0)
            for i in range(n)]


EVENTS = _events(8)
INDEX = EventIndex(EVENTS)


def _pairs(indices):
    return [(EVENTS[a], EVENTS[b]) for a, b in indices]


pair_indices = st.tuples(st.integers(0, 7), st.integers(0, 7))
pair_sets = st.sets(pair_indices, max_size=20)


def _both(indices):
    """The same relation in both representations."""
    pairs = _pairs(indices)
    return Relation(pairs), IndexedRelation.from_pairs(INDEX, pairs)


class TestIndexedRelationEquivalence:
    """Randomised algebra equivalence: every operator agrees."""

    @given(pair_sets)
    def test_roundtrip(self, indices):
        relation, indexed = _both(indices)
        assert indexed.to_relation() == relation
        assert len(indexed) == len(relation)
        assert bool(indexed) == bool(relation)

    @given(pair_sets, pair_sets)
    def test_union_intersection_difference(self, a, b):
        ra, ia = _both(a)
        rb, ib = _both(b)
        assert (ia | ib).to_relation() == ra | rb
        assert (ia & ib).to_relation() == ra & rb
        assert (ia - ib).to_relation() == ra - rb

    @given(pair_sets, pair_sets)
    def test_composition(self, a, b):
        ra, ia = _both(a)
        rb, ib = _both(b)
        assert (ia >> ib).to_relation() == ra >> rb

    @given(pair_sets)
    def test_inverse(self, indices):
        relation, indexed = _both(indices)
        assert (~indexed).to_relation() == ~relation

    @given(pair_sets)
    def test_transitive_closure(self, indices):
        relation, indexed = _both(indices)
        assert (indexed.transitive_closure().to_relation()
                == relation.transitive_closure())

    @given(pair_sets)
    def test_reflexive_closure(self, indices):
        relation, indexed = _both(indices)
        assert (indexed.reflexive_closure().to_relation()
                == relation.reflexive_closure(EVENTS))

    @given(pair_sets)
    def test_acyclicity_and_irreflexivity(self, indices):
        relation, indexed = _both(indices)
        assert indexed.is_acyclic() == relation.is_acyclic()
        assert indexed.is_irreflexive() == relation.is_irreflexive()
        assert indexed.is_empty() == relation.is_empty()

    @given(pair_sets)
    def test_find_cycle_consistent(self, indices):
        """Both representations agree on cyclicity, and any cycle found
        is a genuine closed walk through the relation."""
        relation, indexed = _both(indices)
        cycle = indexed.find_cycle()
        assert (cycle is None) == (relation.find_cycle() is None)
        if cycle is not None:
            for i, event in enumerate(cycle):
                assert (event, cycle[(i + 1) % len(cycle)]) in relation

    @given(pair_sets)
    def test_membership_and_pairs(self, indices):
        relation, indexed = _both(indices)
        assert set(indexed.pairs()) == set(relation.pairs)
        for pair in relation:
            assert pair in indexed

    def test_restrict_masks(self):
        relation, indexed = _both({(0, 1), (1, 2), (2, 3)})
        domain = INDEX.mask_of([EVENTS[0], EVENTS[2]])
        rng = INDEX.mask_of([EVENTS[1], EVENTS[3]])
        kept = indexed.restrict_masks(domain, rng).to_relation()
        assert kept == Relation(_pairs([(0, 1), (2, 3)]))


# ---------------------------------------------------------------------------
# Compiled model vs reference interpreter, per execution.
# ---------------------------------------------------------------------------

class TestCompiledModel:
    def test_compile_is_memoised_per_cat(self):
        model = ptx_model()
        assert model.compiled() is model.compiled()
        assert compile_model(model) is model.compiled()
        assert isinstance(model.compiled(), CompiledCatModel)

    def test_checks_ordered_cheapest_first(self):
        compiled = ptx_model().compiled()
        costs = [check.cost for check in compiled.checks]
        assert costs == sorted(costs)

    def test_all_registered_models_fully_prune_safe(self):
        """Every paper/comparison model is built from monotone operators
        (difference only against fixed relations), so every check can
        reject partial assignments."""
        for name in MODEL_NAMES:
            compiled = load_model(name).compiled()
            assert compiled.prune_checks == compiled.checks

    def test_late_bound_names_resolve_like_the_reference(self):
        """A name bound *after* a function's definition resolves through
        the live environment at check time in the reference interpreter
        (local-then-env lookup); the compile pass must match, not fall
        back to the primitive relation of the same name."""
        text = ("let guard(x) = x | com\n"
                "let com = 0\n"
                "acyclic guard(po) as g\n")
        cat = CatModel(text)
        compiled = CompiledCatModel(cat)
        for execution in enumerate_executions(library.build("sb")):
            assert compiled.allows(execution) == cat.allows(execution)

    def test_bare_indexed_execution_adapter_works(self):
        """allows_view on a hand-built IndexedExecution (no slot count
        supplied) must evaluate, not crash on an unsized memo."""
        from repro.model import IndexedExecution

        model = ptx_model()
        compiled = model.compiled()
        execution = enumerate_executions(library.build("mp"))[0]
        assert (compiled.allows_view(IndexedExecution(execution))
                == model.allows(execution))

    def test_growing_difference_is_not_prune_safe(self):
        """A difference whose right side grows during enumeration must
        not prune: an early failure could be rescued by later rf/co
        pairs disappearing from the result."""
        compiled = CompiledCatModel(CatModel("acyclic po \\ rf as shaky"))
        assert not compiled.checks[0].prune_safe
        fixed = CompiledCatModel(CatModel("acyclic po \\ WR(po) as tso-ish"))
        assert fixed.checks[0].prune_safe

    @settings(max_examples=40, deadline=None)
    @given(name=st.sampled_from(LIBRARY_TESTS),
           model_name=st.sampled_from(MODEL_NAMES))
    def test_per_execution_verdicts_match(self, name, model_name):
        """CompiledCatModel.allows over indexed relations agrees with the
        reference interpreter on every candidate execution."""
        model = load_model(model_name)
        compiled = model.compiled()
        for execution in enumerate_executions(library.build(name),
                                              on_fuel="discard"):
            assert compiled.allows(execution) == model.allows(execution)


# ---------------------------------------------------------------------------
# Engine parity: allowed sets, truncation, errors.
# ---------------------------------------------------------------------------

def _reference_allowed(test, model, **kwargs):
    executions = enumerate_executions(test, **kwargs)
    allowed = {execution.final_state for execution in executions
               if model.allows(execution)}
    return allowed, executions.truncated


class TestEngineParity:
    @settings(max_examples=60, deadline=None)
    @given(name=st.sampled_from(LIBRARY_TESTS),
           model_name=st.sampled_from(MODEL_NAMES))
    def test_library_allowed_sets_identical(self, name, model_name):
        """The headline property: every library test x model yields the
        identical allowed set on both engines."""
        test = library.build(name)
        model = load_model(model_name)
        reference, truncated = _reference_allowed(test, model,
                                                  on_fuel="discard")
        fast = enumerate_allowed(test, model, on_fuel="discard")
        assert set(fast) == reference
        assert fast.truncated == truncated

    _CORPUS = None

    @classmethod
    def _corpus(cls):
        if cls._CORPUS is None:
            tests = generate_tests(default_pool(), max_length=4,
                                   max_tests=None)
            dep = [t for t in tests
                   if "Addr" in t.name or "Data" in t.name
                   or "Ctrl" in t.name]
            cls._CORPUS = dep[:40] + tests[:20]
        return cls._CORPUS

    @settings(max_examples=30, deadline=None)
    @given(index=st.integers(0, 10**6),
           model_name=st.sampled_from(MODEL_NAMES))
    def test_diy_corpus_allowed_sets_identical(self, index, model_name):
        """Generated tests — including address/data/control dependency
        chains, whose provisional rf candidates exercise the deferred
        solver — agree between engines."""
        corpus = self._corpus()
        test = corpus[index % len(corpus)]
        model = load_model(model_name)
        reference, truncated = _reference_allowed(test, model)
        fast = enumerate_allowed(test, model)
        assert set(fast) == reference
        assert fast.truncated == truncated

    _DEEP = None

    @classmethod
    def _deep_tests(cls):
        """Length-6 cycles over a write-heavy pool (the enumeration
        shapes that were previously infeasible)."""
        if cls._DEEP is None:
            pool = [po("W", "W", same_loc=True),
                    po("R", "R", same_loc=True), rfe(), fre(), coe()]
            tests = []
            for cycle in enumerate_cycles(pool, 6):
                if len(tests) >= 6:
                    break
                try:
                    tests.append(cycle_to_test(cycle))
                except GenerationError:
                    continue
            cls._DEEP = tests
        return cls._DEEP

    @pytest.mark.parametrize("model_name", ["ptx", "sc"])
    def test_length6_allowed_sets_identical(self, model_name):
        model = load_model(model_name)
        for test in self._deep_tests():
            reference, truncated = _reference_allowed(test, model)
            fast = enumerate_allowed(test, model)
            assert set(fast) == reference, test.name
            assert fast.truncated == truncated

    @settings(max_examples=25, deadline=None)
    @given(name=st.sampled_from(LIBRARY_TESTS),
           cap=st.integers(1, 30))
    def test_truncation_parity(self, name, cap):
        """Under a max_executions cap with on_limit='truncate', both
        engines see the identical candidate prefix: same partial allowed
        set, same truncated flag."""
        test = library.build(name)
        model = ptx_model()
        reference, truncated = _reference_allowed(
            test, model, on_fuel="discard", max_executions=cap,
            on_limit="truncate")
        fast = enumerate_allowed(test, model, on_fuel="discard",
                                 max_executions=cap, on_limit="truncate")
        assert set(fast) == reference
        assert fast.truncated == truncated

    @settings(max_examples=25, deadline=None)
    @given(name=st.sampled_from(LIBRARY_TESTS),
           cap=st.integers(1, 30))
    def test_enumeration_error_parity(self, name, cap):
        """on_limit='error' raises on the identical caps (with the
        identical message) on both engines."""
        test = library.build(name)
        model = ptx_model()
        reference_error = fast_error = None
        try:
            enumerate_executions(test, on_fuel="discard",
                                 max_executions=cap, on_limit="error")
        except EnumerationError as error:
            reference_error = str(error)
        try:
            enumerate_allowed(test, model, on_fuel="discard",
                              max_executions=cap, on_limit="error")
        except EnumerationError as error:
            fast_error = str(error)
        assert reference_error == fast_error

    def test_fuel_truncation_parity(self):
        test = library.build("sl-future")
        model = ptx_model()
        reference, truncated = _reference_allowed(test, model, fuel=12,
                                                  on_fuel="truncate")
        fast = enumerate_allowed(test, model, fuel=12, on_fuel="truncate")
        assert set(fast) == reference
        assert fast.truncated == truncated

    def test_bad_on_limit_rejected(self):
        with pytest.raises(ValueError):
            enumerate_allowed(library.build("mp"), ptx_model(),
                              on_limit="sometimes")

    def test_allowed_outcomes_engine_dispatch(self):
        model = ptx_model()
        test = library.build("mp+membar.gls")
        fast = model.allowed_outcomes(test, engine="fast")
        reference = model.allowed_outcomes(test, engine="reference")
        assert set(fast) == set(reference)
        assert model.allows_condition(test, engine="fast") \
            == model.allows_condition(test, engine="reference")


# ---------------------------------------------------------------------------
# Engine switch plumbing: RunSpec / backends / Session / CLI.
# ---------------------------------------------------------------------------

class TestModelEngineSwitch:
    def test_default_engine_is_fast(self):
        assert DEFAULT_MODEL_ENGINE == "fast"
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=10)
        assert spec.model_engine == "fast"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_ENGINE", "reference")
        assert resolve_model_engine(None) == "reference"
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=10)
        assert spec.model_engine == "reference"

    def test_bad_env_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_ENGINE", "oracular")
        with pytest.raises(ConfigurationError):
            resolve_model_engine(None)

    def test_bad_engine_argument(self):
        with pytest.raises(ReproError):
            RunSpec.make(library.build("mp"), "Titan", iterations=10,
                         model_engine="oracular")

    def test_fingerprint_model_engine_independent(self):
        """Shard seeds derive from the fingerprint, so the fingerprint
        must not see the model engine (mirroring the sim engine)."""
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=100,
                            model_engine="fast")
        reference = spec.with_model_engine("reference")
        assert spec.fingerprint() == reference.fingerprint()
        assert reference.model_engine == "reference"

    def test_cache_signature_model_engine_dependent(self):
        """Cached verdicts must not cross engines: a reference verdict
        answering a fast-engine request would mask fast-path bugs."""
        backend = ModelBackend()
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=1,
                            model_engine="fast")
        assert (backend.cache_signature(spec)
                != backend.cache_signature(
                    spec.with_model_engine("reference")))

    def test_cache_signature_still_chip_independent(self):
        backend = ModelBackend()
        test = library.build("mp")
        titan = RunSpec.make(test, "Titan", iterations=1)
        gtx = RunSpec.make(test, "GTX6", iterations=99, seed=7)
        assert backend.cache_signature(titan) == backend.cache_signature(gtx)

    def test_session_model_engine_default_and_override(self):
        session = Session(backend="model", model_engine="reference",
                          cache=False)
        test = library.build("mp")
        result = session.run(test, "Titan", iterations=1)
        assert result.spec.model_engine == "reference"
        result = session.run(test, "Titan", iterations=1,
                             model_engine="fast")
        assert result.spec.model_engine == "fast"

    def test_sessions_identical_across_engines(self):
        test = library.build("mp+membar.gls")
        histograms = {}
        for engine in MODEL_ENGINES:
            session = Session(backend="model", cache=False,
                              model_engine=engine)
            result = session.run(test, "Titan", iterations=1)
            histograms[engine] = result.histogram.counts
        assert histograms["fast"] == histograms["reference"]

    def test_cli_model_engine_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["model", "mp", "--model-engine",
                                  "reference"])
        assert args.model_engine == "reference"
        args = parser.parse_args(["soundness", "--model-engine", "fast"])
        assert args.model_engine == "fast"
        args = parser.parse_args(["run", "mp"])
        assert args.model_engine is None  # defer to REPRO_MODEL_ENGINE

    def test_cli_witness_subcommand(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["witness", "mp", "--model", "none"])
        assert args.model == "none" and args.output is None
        args = parser.parse_args(["witness", "mp", "-o", "mp.dot"])
        assert args.output == "mp.dot"

    def test_make_backend_error_lists_model_names(self):
        with pytest.raises(ReproError) as excinfo:
            make_backend("quantum")
        message = str(excinfo.value)
        assert "model:NAME" in message
        for name in MODEL_NAMES:
            assert name in message
        assert "model:<" not in message  # the old confusing rendering


# ---------------------------------------------------------------------------
# Sharded model backend.
# ---------------------------------------------------------------------------

class TestShardedModelBackend:
    def test_model_backend_declares_sharding(self):
        backend = ModelBackend()
        assert backend.supports_sharding
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=1)
        shards = backend.shards(spec, shard_size=25000)
        assert len(shards) == 1
        assert shards[0].iterations == 0  # verdicts are not iterations

    def test_parallel_model_campaign_matches_serial(self):
        tests = [library.build(name) for name in
                 ("mp", "sb", "lb", "coRR", "mp+membar.gls")]
        serial = Session(backend="model", cache=False)
        threaded = Session(backend="model", cache=False, jobs=4,
                           executor="thread")
        a = serial.campaign(tests, ["Titan"], iterations=1)
        b = threaded.campaign(tests, ["Titan"], iterations=1)
        for key, result in a.results.items():
            assert result.histogram.counts == b.get(*key).histogram.counts

    def test_model_shards_do_not_pollute_iteration_stats(self):
        session = Session(backend="model", cache=False)
        session.run(library.build("mp"), "Titan", iterations=1)
        assert session.stats.simulated_iterations == 0
        assert session.stats.executed == 1

    def test_model_cache_entries_shard_size_independent(self):
        from repro.api import ResultCache

        cache = ResultCache()
        Session(backend="model", cache=cache, shard_size=7).run(
            library.build("mp"), "Titan", iterations=1)
        session = Session(backend="model", cache=cache, shard_size=9999)
        session.run(library.build("mp"), "Titan", iterations=1)
        assert session.stats.executed == 0  # verdicts are decomposition-free

    def test_sharded_soundness_matches_serial(self):
        tests = uniquify_tests(generate_tests(default_pool(), max_length=3,
                                              max_tests=8))
        serial = run_soundness(tests, ["Titan"], iterations=80, seed=3,
                               cache=False)
        parallel = run_soundness(tests, ["Titan"], iterations=80, seed=3,
                                 jobs=3, executor="thread", cache=False)
        assert serial.ok == parallel.ok
        assert ([cell.observations for cell in serial.cells]
                == [cell.observations for cell in parallel.cells])
        assert serial.allowed_counts == parallel.allowed_counts


# ---------------------------------------------------------------------------
# The acceptance scenario: a length-6 soundness campaign.
# ---------------------------------------------------------------------------

class TestLength6Soundness:
    def test_length6_campaign_completes_and_is_sound(self):
        """A soundness campaign over a length-6 diy corpus — previously
        enumeration-infeasible — completes without EnumerationError and
        the PTX model allows every observation."""
        pool = [po("W", "W", same_loc=True), po("R", "R", same_loc=True),
                rfe(), fre(), coe()]
        tests = []
        for cycle in enumerate_cycles(pool, 6):
            if len(tests) >= 5:
                break
            try:
                tests.append(cycle_to_test(cycle))
            except GenerationError:
                continue
        assert len(tests) == 5
        report = run_soundness(uniquify_tests(tests), ["Titan", "GTX7"],
                               iterations=60, seed=11, cache=False)
        assert report.ok, report.violation_lines()
        assert len(report.cells) == len(tests) * 2
        # Every verdict enumerated once per test text, on the fast engine.
        assert report.model_stats["executed"] == len(tests)
