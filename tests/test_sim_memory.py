"""Tests for the simulated memory system."""

import random

import pytest

from repro.errors import SimulationError
from repro.ptx.types import MemorySpace, Scope
from repro.sim.chip import ChipProfile
from repro.sim.memory import MemorySystem


def _chip(**kwargs):
    defaults = dict(name="test", short="T", vendor="Nvidia",
                    architecture="Test", year=2020, n_sms=2)
    defaults.update(kwargs)
    return ChipProfile(**defaults)


def _memory(chip=None, stale=False, seed=0):
    memory = MemorySystem(chip or _chip(), random.Random(seed), n_sms=2,
                          stale_intent=stale)
    memory.install(0x100, 0, MemorySpace.GLOBAL)
    memory.install(0x200, 7, MemorySpace.GLOBAL)
    memory.install(0x300, 3, MemorySpace.SHARED)
    return memory


class TestGlobalMemory:
    def test_initial_values(self):
        memory = _memory()
        assert memory.read(0, 0x100, cop="cg") == 0
        assert memory.read(1, 0x200, cop="cg") == 7

    def test_write_visible_to_all_sms(self):
        memory = _memory()
        memory.write(0, 0x100, 42)
        assert memory.read(1, 0x100, cop="cg") == 42

    def test_unmapped_address_rejected(self):
        memory = _memory()
        with pytest.raises(SimulationError):
            memory.read(0, 0xDEAD, cop="cg")

    def test_final_value(self):
        memory = _memory()
        memory.write(0, 0x100, 9)
        assert memory.final_value(0x100) == 9


class TestSharedMemory:
    def test_per_sm_isolation(self):
        memory = _memory()
        memory.write(0, 0x300, 99)
        assert memory.read(0, 0x300) == 99
        assert memory.read(1, 0x300) == 3  # other SM's copy untouched

    def test_final_value_prefers_modified_copy(self):
        memory = _memory()
        memory.write(0, 0x300, 99)
        assert memory.final_value(0x300) in (3, 99)


class TestAtomics:
    def test_cas_success(self):
        memory = _memory()
        assert memory.atomic_cas(0, 0x100, 0, 5) == 0
        assert memory.read(0, 0x100, cop="cg") == 5

    def test_cas_failure_leaves_value(self):
        memory = _memory()
        assert memory.atomic_cas(0, 0x200, 0, 5) == 7
        assert memory.read(0, 0x200, cop="cg") == 7

    def test_exch(self):
        memory = _memory()
        assert memory.atomic_exch(0, 0x200, 1) == 7
        assert memory.read(0, 0x200, cop="cg") == 1

    def test_add(self):
        memory = _memory()
        assert memory.atomic_add(0, 0x200, 3) == 7
        assert memory.read(0, 0x200, cop="cg") == 10


class TestL1Staleness:
    """The legacy stale-line machinery (configurable, off by default)."""

    def _stale_chip(self):
        return _chip(l1_stale_reads=True, p_stale=1.0, p_l1_warm=1.0,
                     p_store_invalidates_own_l1=0.0, p_cg_evicts_l1=0.0,
                     fence_l1_inval={Scope.GL: 1.0})

    def test_warm_line_returns_stale_value(self):
        memory = _memory(self._stale_chip(), stale=True)
        memory.warm_l1()
        memory.write(1, 0x100, 42)  # remote store: no invalidation
        assert memory.read(0, 0x100, cop="ca") == 0  # stale!
        assert memory.read(0, 0x100, cop="cg") == 42

    def test_fence_invalidates(self):
        memory = _memory(self._stale_chip(), stale=True)
        memory.warm_l1()
        memory.write(1, 0x100, 42)
        memory.fence(0, Scope.GL)
        assert memory.read(0, 0x100, cop="ca") == 42

    def test_no_staleness_without_intent(self):
        memory = _memory(self._stale_chip(), stale=False)
        memory.warm_l1()
        memory.write(1, 0x100, 42)
        assert memory.read(0, 0x100, cop="ca") == 42

    def test_ca_miss_fills_line(self):
        memory = _memory(self._stale_chip(), stale=True)
        # No warm-up: first .ca read fills the line with the fresh value,
        # a later remote store leaves it stale.
        assert memory.read(0, 0x100, cop="ca") == 0
        memory.write(1, 0x100, 5)
        assert memory.read(0, 0x100, cop="ca") == 0
