"""Tests for the litmus container, conditions, parser/writer and library."""

import pytest

from repro.errors import LitmusSyntaxError
from repro.hierarchy import ScopeTree
from repro.litmus import (FinalState, LitmusTest, MemEq, RegEq,
                          parse_condition, parse_litmus, write_litmus)
from repro.litmus import library
from repro.ptx import CacheOp, Imm, Ld, Loc, Membar, Reg, Scope, St
from repro.ptx import Addr, ThreadProgram


def _simple_test():
    t0 = ThreadProgram(0, [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)])
    t1 = ThreadProgram(1, [Ld(Reg("r1"), Addr(Loc("x")), cop=CacheOp.CG)])
    return LitmusTest(name="t", threads=(t0, t1),
                      condition=parse_condition("exists (1:r1=0)"))


class TestConditionParsing:
    def test_register_atom(self):
        condition = parse_condition("exists (1:r1=1)")
        assert condition.quantifier == "exists"
        assert condition.expr == RegEq(1, "r1", 1)

    def test_memory_atom(self):
        condition = parse_condition("exists (x=2)")
        assert condition.expr == MemEq("x", 2)

    def test_conjunction(self):
        condition = parse_condition(r"exists (0:r2=0 /\ 1:r2=0)")
        state = FinalState.make({(0, "r2"): 0, (1, "r2"): 0})
        assert condition.holds(state)

    def test_disjunction(self):
        condition = parse_condition(r"exists (0:r0=1 \/ 0:r0=2)")
        assert condition.holds(FinalState.make({(0, "r0"): 2}))
        assert not condition.holds(FinalState.make({(0, "r0"): 3}))

    def test_negation(self):
        condition = parse_condition("exists (~(0:r0=1))")
        assert condition.holds(FinalState.make({(0, "r0"): 0}))

    def test_forall(self):
        condition = parse_condition("forall (0:r0=0)")
        states = [FinalState.make({(0, "r0"): 0}), FinalState.make({(0, "r0"): 1})]
        assert not condition.verdict(states)
        assert condition.verdict(states[:1])

    def test_final_prefix(self):
        condition = parse_condition(r"final: 1:r1=1 /\ 1:r2=0")
        assert condition.quantifier == "exists"

    def test_missing_register_is_false(self):
        condition = parse_condition("exists (3:r9=1)")
        assert not condition.holds(FinalState.make({}))

    def test_registers_reported(self):
        condition = parse_condition(r"exists (0:r2=0 /\ 1:r2=0)")
        assert condition.registers() == {(0, "r2"), (1, "r2")}

    def test_garbage_rejected(self):
        with pytest.raises(LitmusSyntaxError):
            parse_condition("exists (0:r2=)")

    def test_round_trip(self):
        text = r"exists (0:r2=0 /\ 1:r2=0)"
        condition = parse_condition(text)
        assert parse_condition(str(condition)) == condition


class TestFinalState:
    def test_hashable_and_equal(self):
        a = FinalState.make({(0, "r0"): 1}, {"x": 2})
        b = FinalState.make({(0, "r0"): 1}, {"x": 2})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_accessors(self):
        state = FinalState.make({(0, "r0"): 1}, {"x": 2})
        assert state.reg(0, "r0") == 1
        assert state.loc("x") == 2
        with pytest.raises(KeyError):
            state.reg(1, "r0")


class TestLitmusTestContainer:
    def test_default_scope_tree_is_intra_cta(self):
        test = _simple_test()
        assert test.scope_tree.classify() == "intra-cta"

    def test_locations_discovered_from_instructions(self):
        assert _simple_test().locations() == ["x"]

    def test_address_map_distinct(self):
        test = library.build("mp")
        addresses = test.address_map()
        assert len(set(addresses.values())) == len(addresses)

    def test_mismatched_scope_tree_rejected(self):
        t0 = ThreadProgram(0, [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)])
        with pytest.raises(LitmusSyntaxError):
            LitmusTest(name="t", threads=(t0,),
                       scope_tree=ScopeTree.intra_cta(["T0", "T9"]),
                       condition=parse_condition("exists (0:r0=0)"))

    def test_wrong_tid_slot_rejected(self):
        t0 = ThreadProgram(1, [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)])
        with pytest.raises(LitmusSyntaxError):
            LitmusTest(name="t", threads=(t0,),
                       condition=parse_condition("exists (0:r0=0)"))

    def test_validate_flags_cross_cta_shared(self):
        test = library.mp_volatile(placement="inter-cta")
        assert any("shared" in issue for issue in test.validate())

    def test_validate_clean_for_paper_tests(self):
        for name, test in library.all_paper_tests().items():
            assert test.validate() == [], name


class TestLibrary:
    def test_registry_complete(self):
        tests = library.all_paper_tests()
        assert len(tests) >= 25
        for name, test in tests.items():
            assert test.n_threads >= 2, name

    @pytest.mark.parametrize("name,idiom", [
        ("coRR", "coRR"), ("mp-L1", "mp"), ("coRR-L2-L1", "coRR"),
        ("mp-volatile", "mp"), ("dlb-mp", "mp"), ("dlb-lb", "lb"),
        ("cas-sl", "mp"), ("sl-future", "mp"), ("sb", "sb"), ("lb", "lb"),
    ])
    def test_idioms_match_table3(self, name, idiom):
        assert library.build(name).idiom == idiom

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            library.build("nonexistent")

    def test_corr_structure(self):
        test = library.build("coRR")
        assert test.scope_tree.classify() == "intra-cta"
        loads = [i for i in test.threads[1] if isinstance(i, Ld)]
        assert len(loads) == 2
        assert all(load.addr == Addr(Loc("x")) for load in loads)

    def test_mp_l1_uses_ca_loads_cg_stores(self):
        test = library.build("mp-L1")
        assert all(i.cop is CacheOp.CG for i in test.threads[0]
                   if isinstance(i, St))
        assert all(i.cop is CacheOp.CA for i in test.threads[1]
                   if isinstance(i, Ld))

    def test_mp_l1_fence_variants(self):
        for scope in Scope:
            test = library.mp_l1(fence=scope)
            fences = [i for thread in test.threads for i in thread
                      if isinstance(i, Membar)]
            assert [f.scope for f in fences] == [scope, scope]

    def test_mp_volatile_is_shared_memory(self):
        test = library.build("mp-volatile")
        assert str(test.space_of("x")) == "shared"
        assert test.uses_volatile()

    def test_cas_sl_initial_lock_held(self):
        test = library.build("cas-sl")
        assert test.initial_value("m") == 1
        assert test.initial_value("x") == 0

    def test_fixed_variants_add_instructions(self):
        assert len(library.sl_future(fixed=True).threads[0]) > \
            len(library.sl_future(fixed=False).threads[0]) - 1

    def test_inter_cta_placements(self):
        for name in ["mp-L1", "dlb-mp", "dlb-lb", "cas-sl", "sl-future"]:
            assert library.build(name).scope_tree.classify() == "inter-cta", name


class TestLitmusFormatRoundTrip:
    @pytest.mark.parametrize("name", sorted(library.PAPER_TESTS))
    def test_write_then_parse_preserves_structure(self, name):
        original = library.build(name)
        text = write_litmus(original)
        parsed = parse_litmus(text)
        assert parsed.n_threads == original.n_threads
        assert parsed.condition == original.condition
        assert parsed.scope_tree.classify() == original.scope_tree.classify()
        for tid in range(original.n_threads):
            original_instructions = [str(i) for i in original.threads[tid]]
            parsed_instructions = [str(i) for i in parsed.threads[tid]]
            assert parsed_instructions == original_instructions, name

    def test_parse_fig12_verbatim(self):
        text = r"""
        GPU_PTX SB
        {0:.reg .s32 r0; 0:.reg .s32 r2;
         0:.reg .b64 r1 = x; 0:.reg .b64 r3 = y;
         1:.reg .s32 r0; 1:.reg .s32 r2;
         1:.reg .b64 r1 = y; 1:.reg .b64 r3 = x;}
         T0                 | T1                 ;
         mov.s32 r0,1       | mov.s32 r0,1       ;
         st.cg.s32 [r1],r0  | st.cg.s32 [r1],r0  ;
         ld.cg.s32 r2,[r3]  | ld.cg.s32 r2,[r3]  ;
        ScopeTree(grid(cta(warp T0) (warp T1)))
        x: shared, y: global
        exists (0:r2=0 /\ 1:r2=0)
        """
        test = parse_litmus(text)
        assert test.name == "SB"
        assert test.n_threads == 2
        assert str(test.space_of("x")) == "shared"
        assert test.scope_tree.classify() == "intra-cta"
        # Registers bound to locations resolve through reg_init.
        assert test.reg_init[(0, "r1")] == Loc("x")
        assert test.reg_init[(1, "r1")] == Loc("y")

    def test_init_values_parsed(self):
        text = """
        GPU_PTX t
        { 0:.reg .s32 r0; m = 1; }
         T0 ;
         ld.cg.s32 r0,[m] ;
        exists (0:r0=1)
        """
        test = parse_litmus(text)
        assert test.initial_value("m") == 1

    def test_missing_condition_rejected(self):
        with pytest.raises(LitmusSyntaxError):
            parse_litmus("GPU_PTX t\n T0 ;\n ld.cg r0,[x] ;\n")

    def test_empty_rejected(self):
        with pytest.raises(LitmusSyntaxError):
            parse_litmus("")
