"""Tests for the static pre-screening analyzer (repro.analysis).

Covers the classification engine over the full scenario registry and the
litmus library, the guard diagnostics, the AnalysisBackend behind the
Session machinery, the prescreen triage flow, the consistency oracles,
the backend registry, and the CLI ``analyze`` subcommand.
"""

import pytest

from repro.analysis import (CLEAN, RACY, UNKNOWN, AnalysisBackend,
                            analysis_session, analyze_test,
                            condition_skippable, prescreen, run_prescreened,
                            verdict_from_histogram, verdict_state)
from repro.analysis.backend import ANALYSIS_LOCATION
from repro.analysis.consistency import check_library, check_scenarios
from repro.api.backends import make_backend
from repro.api.spec import RunSpec
from repro.apps import app_matrix, app_session, select_scenarios
from repro.apps.scenario import SCENARIOS
from repro.cli import main
from repro.compiler import Kernel, compile_kernel
from repro.errors import ConfigurationError, ReproError
from repro.harness.histogram import Histogram
from repro.litmus import library, parse_litmus
from repro.model.models import load_model


#: The full 22-scenario registry, classified by hand against Sec. 3.2:
#: every published (unfenced) variant is provably racy; every fenced
#: variant is provably ordered except deque-lb+fenced — its pop thread
#: takes then re-publishes the task in straight-line code (no control
#: dependency to hang a lock-style acquire on) and the republished task
#: store has no trailing fence, so one direction of the task pair keeps
#: a candidate ordering edge and the analyzer stays conservative.
EXPECTED_SCENARIO_VERDICTS = {
    "deque-lb": RACY, "deque-lb+fenced": UNKNOWN,
    "deque-mp": RACY, "deque-mp+fenced": CLEAN,
    "deque-rt": RACY, "deque-rt+fenced": CLEAN,
    "dot-cbe": RACY, "dot-cbe+fenced": CLEAN,
    "dot-cbe-cta": RACY, "dot-cbe-cta+fenced": CLEAN,
    "dot-heyu": RACY, "dot-heyu+fenced": CLEAN,
    "dot-heyu-cta": RACY, "dot-heyu-cta+fenced": CLEAN,
    "dot-so": RACY, "dot-so+fenced": CLEAN,
    "dot-so-cta": RACY, "dot-so-cta+fenced": CLEAN,
    "isolation": RACY, "isolation+fenced": CLEAN,
    "ticket": RACY, "ticket+fenced": CLEAN,
}


class TestScenarioVerdicts:
    def test_registry_matrix(self):
        assert set(EXPECTED_SCENARIO_VERDICTS) == set(SCENARIOS)
        got = {name: analyze_test(SCENARIOS[name].test()).verdict
               for name in SCENARIOS}
        assert got == EXPECTED_SCENARIO_VERDICTS

    def test_every_published_lock_is_provably_racy(self):
        # The acceptance bar: the three published dot-product locks
        # (CUDA by Example, Stuart-Owens, He-Yu) x both scope placements.
        for family in ("dot-cbe", "dot-so", "dot-heyu"):
            for name in (family, family + "-cta"):
                assert analyze_test(SCENARIOS[name].test()).verdict == RACY
                fixed = analyze_test(SCENARIOS[name + "+fenced"].test())
                assert fixed.verdict == CLEAN

    def test_racy_reasons_name_the_rule(self):
        report = analyze_test(SCENARIOS["dot-heyu"].test())
        assert any("annuls atomic" in pair.reason
                   for pair in report.racy_pairs)
        report = analyze_test(SCENARIOS["deque-mp"].test())
        assert any("no covering fence" in pair.reason
                   for pair in report.racy_pairs)

    def test_fenced_locks_certified_by_the_lock_rule(self):
        report = analyze_test(SCENARIOS["dot-cbe+fenced"].test())
        ordered = [pair for pair in report.pairs if pair.verdict == "ordered"]
        assert ordered and all("lock" in pair.reason for pair in ordered)

    def test_fenced_deque_certified_by_the_handshake_rule(self):
        report = analyze_test(SCENARIOS["deque-mp+fenced"].test())
        ordered = [pair for pair in report.pairs if pair.verdict == "ordered"]
        assert ordered and all("handshake" in pair.reason for pair in ordered)


class TestLibraryVerdicts:
    def test_weak_tests_are_racy(self):
        for name in ("mp", "sb", "lb", "coRR", "cas-sl", "exch-sl",
                     "sl-future", "dlb-mp", "dlb-lb", "mp-L1"):
            assert analyze_test(library.build(name)).verdict == RACY, name

    def test_fence_only_fixes_stay_unknown(self):
        # Fences without a dependency give candidate edges the analyzer
        # cannot discharge: conservative, not certified.
        for name in ("mp+membar.gls", "lb+membar.gls", "mp-L1+membar.gls",
                     "mp-fig14", "dlb-lb+membar.gls"):
            assert analyze_test(library.build(name)).verdict == UNKNOWN, name

    def test_dependency_plus_fence_fixes_are_clean(self):
        for name in ("cas-sl+membar.gls", "dlb-mp+membar.gls",
                     "sl-future+fixed", "mp-volatile"):
            assert analyze_test(library.build(name)).verdict == CLEAN, name

    def test_volatile_clean_carries_no_sc_obligation(self):
        # mp-volatile is race-free by intent but volatiles order nothing
        # (Fig. 5): clean must NOT imply SC there.
        report = analyze_test(library.build("mp-volatile"))
        assert report.verdict == CLEAN
        assert report.volatile_sync_pairs > 0
        assert not report.sc_obligation

    def test_lock_idiom_clean_does_carry_sc_obligation(self):
        for name in ("cas-sl+membar.gls", "sl-future+fixed"):
            report = analyze_test(library.build(name))
            assert report.verdict == CLEAN
            assert report.sc_obligation, name

    def test_report_lines_render(self):
        report = analyze_test(library.build("mp"))
        lines = report.lines()
        assert lines[0].startswith("mp: racy")
        assert any("pair" in line for line in lines[1:])


SPIN_DEAD = """GPU_PTX spin-dead
{
 0:.reg .pred p0;
 0:.reg .s32 r0;
}
 T0                    | T1               ;
 WHILE0:               | st.cg.s32 [y], 1 ;
 ld.cg.s32 r0, [x]     |                  ;
 setp.ne.s32 p0, r0, 1 |                  ;
 @p0 bra WHILE0        |                  ;
ScopeTree (grid (cta (warp T0)) (cta (warp T1)))
exists (x=0)
"""

WARP_DIV = """GPU_PTX warp-div
{
 0:.reg .pred p0;
 0:.reg .s32 r0;
}
 T0                    | T1               ;
 WHILE0:               | membar.gl        ;
 ld.cg.s32 r0, [x]     | st.cg.s32 [x], 1 ;
 setp.ne.s32 p0, r0, 1 |                  ;
 @p0 bra WHILE0        |                  ;
ScopeTree (grid (cta (warp T0 T1)))
exists (x=1)
"""


class TestDiagnostics:
    def test_spin_deadlock_when_nobody_stores_the_exit_value(self):
        report = analyze_test(parse_litmus(SPIN_DEAD))
        kinds = {diag.kind for diag in report.diagnostics}
        assert "spin-deadlock" in kinds

    def test_warp_divergence_for_intra_warp_spin(self):
        report = analyze_test(parse_litmus(WARP_DIV))
        kinds = {diag.kind for diag in report.diagnostics}
        assert "warp-divergence" in kinds

    def test_unordered_guard_on_published_deque(self):
        report = analyze_test(SCENARIOS["deque-mp"].test())
        kinds = {diag.kind for diag in report.diagnostics}
        assert "unordered-guard" in kinds

    def test_annulled_atomic_on_he_yu_lock(self):
        report = analyze_test(SCENARIOS["dot-heyu"].test())
        kinds = {diag.kind for diag in report.diagnostics}
        assert "annulled-atomic" in kinds

    def test_fenced_variants_are_diagnostic_free(self):
        for name in ("deque-mp+fenced", "dot-heyu+fenced"):
            assert not analyze_test(SCENARIOS[name].test()).diagnostics


class TestVerdictEncoding:
    def test_round_trip(self):
        for verdict in (CLEAN, UNKNOWN, RACY):
            histogram = Histogram()
            histogram.add(verdict_state(verdict))
            assert verdict_from_histogram(histogram) == verdict

    def test_rejects_empty_histogram(self):
        with pytest.raises(ReproError):
            verdict_from_histogram(Histogram())

    def test_rejects_foreign_histogram(self):
        from repro.litmus.condition import FinalState
        histogram = Histogram()
        histogram.add(FinalState.make(mem={"x": 1}))
        with pytest.raises(ReproError):
            verdict_from_histogram(histogram)


class TestAnalysisBackend:
    def test_make_backend_resolves_analysis(self):
        backend = make_backend("analysis")
        assert isinstance(backend, AnalysisBackend)
        assert backend.name == "analysis"

    def test_make_backend_error_lists_every_backend(self):
        with pytest.raises(ReproError) as err:
            make_backend("bogus")
        message = str(err.value)
        for name in ("'analysis'", "'app'", "'model'", "'sim'",
                     "model:NAME"):
            assert name in message
        from repro.model.models import MODELS
        for name in MODELS:
            assert name in message

    def test_session_verdicts_and_zero_iteration_accounting(self):
        session = analysis_session(cache=False)
        specs = [RunSpec.make(library.build("mp"), "Titan", iterations=50),
                 RunSpec.make(library.build("mp"), "GTX7", iterations=999,
                              seed=7)]
        results = session.run_specs(specs)
        verdicts = [verdict_from_histogram(r.histogram) for r in results]
        assert verdicts == [RACY, RACY]
        # The signature covers only the litmus text: the second chip's
        # cell deduplicates in-plan, and nothing counts as simulated.
        assert session.stats.deduplicated == 1
        assert session.stats.executed == 1
        assert session.stats.simulated_iterations == 0
        assert results[1].cached

    def test_verdicts_round_trip_through_the_disk_cache(self, tmp_path):
        spec = RunSpec.make(library.build("cas-sl+membar.gls"), "Titan",
                            iterations=10)
        first = analysis_session(cache_dir=str(tmp_path))
        result = first.run_specs([spec])[0]
        assert verdict_from_histogram(result.histogram) == CLEAN
        assert first.stats.cache_hits == 0
        second = analysis_session(cache_dir=str(tmp_path))
        again = second.run_specs([spec])[0]
        assert second.stats.cache_hits == 1
        assert verdict_from_histogram(again.histogram) == CLEAN

    def test_scenario_specs_run_through_the_backend(self):
        session = analysis_session(cache=False)
        specs = app_matrix(select_scenarios(["ticket"]), ["Titan"], runs=10)
        verdicts = [verdict_from_histogram(r.histogram)
                    for r in session.run_specs(specs)]
        assert verdicts == [RACY, CLEAN]


class TestPrescreen:
    def test_prescreen_aligns_with_specs(self):
        specs = app_matrix(select_scenarios(["deque-mp"]), ["Titan"],
                           runs=20, seed=1)
        assert prescreen(specs) == [RACY, CLEAN]

    def test_prescreen_rejects_foreign_sessions(self):
        specs = app_matrix(select_scenarios(["ticket"]), ["Titan"], runs=10)
        with pytest.raises(ReproError):
            prescreen(specs, session=app_session(cache=False))

    def test_run_prescreened_skips_only_clean_cells(self):
        specs = app_matrix(select_scenarios(["deque-mp"]), ["Titan"],
                           runs=20, seed=1)
        session = app_session(cache=False)
        results, verdicts = run_prescreened(specs, session)
        assert verdicts == [RACY, CLEAN]
        racy, clean = results
        assert racy.backend == "app" and racy.iterations == 20
        assert clean.backend == "analysis"
        assert clean.histogram.total == 0 and clean.observations == 0
        assert session.stats.executed == 1

    def test_run_prescreened_custom_skip_predicate(self):
        specs = app_matrix(select_scenarios(["deque-mp"]), ["Titan"],
                           runs=20, seed=1)
        session = app_session(cache=False)
        results, _ = run_prescreened(specs, session,
                                     skip=lambda spec, verdict: False)
        assert all(result.backend == "app" for result in results)

    def test_condition_skippable_needs_the_full_proof(self):
        # Clean + SC-implied + SC-forbidden condition: skippable.
        assert condition_skippable(library.build("cas-sl+membar.gls"))
        # Clean but the volatile exemption voids the SC implication —
        # mp-volatile's weak condition really is observable.
        assert not condition_skippable(library.build("mp-volatile"))
        # Racy tests are never skippable.
        assert not condition_skippable(library.build("mp"))


class TestConsistency:
    def test_library_check_is_clean(self):
        rows, problems = check_library()
        assert problems == []
        by_name = {name: (verdict, note) for name, verdict, note in rows}
        assert by_name["cas-sl+membar.gls"][0] == CLEAN
        assert by_name["cas-sl+membar.gls"][1].startswith("SC")
        assert "no SC obligation" in by_name["mp-volatile"][1]

    def test_scenario_check_spots_no_contradictions(self):
        rows, problems = check_scenarios(
            scenarios=select_scenarios(["deque-mp"]), chips=["Titan"],
            runs=30, seed=0)
        assert problems == []
        verdicts = {name: verdict for name, verdict, _, _ in rows}
        assert verdicts == {"deque-mp": RACY, "deque-mp+fenced": CLEAN}


class TestCompileKernelErrors:
    def test_unknown_statement_names_itself_and_the_known_set(self):
        class Bogus:
            def __repr__(self):
                return "Bogus()"

        with pytest.raises(ConfigurationError) as err:
            compile_kernel(Kernel([Bogus()]), 0)
        message = str(err.value)
        assert "Bogus" in message
        assert "Store" in message and "Load" in message

    def test_configuration_error_is_a_repro_error(self):
        assert issubclass(ConfigurationError, ReproError)


class TestCli:
    def test_analyze_library_tests(self, capsys):
        assert main(["analyze", "mp", "mp-volatile"]) == 0
        out = capsys.readouterr().out
        assert "mp: racy" in out
        assert "mp-volatile: clean" in out
        assert "verdicts: 1 racy, 1 clean" in out

    def test_analyze_scenarios_with_detail(self, capsys):
        assert main(["analyze", "--scenario", "dot-heyu", "--detail"]) == 0
        out = capsys.readouterr().out
        assert "annulled-atomic" in out
        assert "pair" in out

    def test_analyze_without_a_selection_exits(self):
        with pytest.raises(SystemExit):
            main(["analyze"])

    def test_analyze_cross_check_library_only(self, capsys):
        assert main(["analyze", "cas-sl+membar.gls", "--cross-check"]) == 0
        out = capsys.readouterr().out
        assert "consistency: ok" in out

    def test_app_prescreen_skips_fenced_cells(self, capsys):
        rc = main(["app", "-s", "deque-mp", "--chips", "Titan",
                   "--prescreen", "--runs", "30", "--executor", "thread"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "prescreen:" in out
        assert "deque-mp+fenced" in out

    def test_campaign_prescreen_keeps_observable_conditions(self, capsys):
        rc = main(["campaign", "mp-volatile", "cas-sl+membar.gls",
                   "--chips", "Titan", "--iterations", "30", "--prescreen",
                   "--executor", "thread"])
        assert rc == 0
        out = capsys.readouterr().out
        # cas-sl+membar.gls is skipped by proof; mp-volatile must run
        # (clean but its weak condition is observable).
        skip_line = [line for line in out.splitlines()
                     if "zero observations" in line][0]
        assert "cas-sl+membar.gls" in skip_line
        assert "mp-volatile" not in skip_line


class TestModelAgreement:
    def test_clean_sc_obligated_tests_really_are_sc(self):
        ptx, sc = load_model("ptx"), load_model("sc")
        for name in ("cas-sl+membar.gls", "sl-future+fixed"):
            test = library.build(name)
            assert set(ptx.allowed_outcomes(test, fuel=128)) <= \
                set(sc.allowed_outcomes(test, fuel=128))

    def test_mp_volatile_is_clean_yet_weak(self):
        # The pair that motivates the volatile exemption: the PTX model
        # allows mp-volatile's weak outcome even though the analyzer
        # (correctly) reports no data race.
        test = library.build("mp-volatile")
        assert analyze_test(test).verdict == CLEAN
        ptx, sc = load_model("ptx"), load_model("sc")
        assert set(ptx.allowed_outcomes(test, fuel=128)) - \
            set(sc.allowed_outcomes(test, fuel=128))
