"""Tests for the GPU machine: shape invariants and model soundness."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FuelExhausted
from repro.litmus import library, parse_litmus
from repro.model.enumerate import allowed_final_states, enumerate_executions
from repro.model.models import ptx_model
from repro.sim import CHIPS, GpuMachine, chip, run_iterations

PTX = ptx_model()


def _weak_runs(test, chip_name, iterations=400, seed=11, **kwargs):
    histogram = run_iterations(test, chip(chip_name), iterations, seed=seed,
                               **kwargs)
    return sum(count for state, count in histogram.items()
               if test.condition.holds(state))


class TestStrongChip:
    """The GTX 280 exhibited no weak behaviours (Sec. 1, fn. 7)."""

    @pytest.mark.parametrize("name", ["coRR", "mp", "sb", "lb", "dlb-mp",
                                      "dlb-lb", "cas-sl", "sl-future",
                                      "mp-volatile", "mp-L1"])
    def test_gtx280_never_weak(self, name):
        assert _weak_runs(library.build(name), "GTX280") == 0


class TestFenceRestoration:
    """Fences of sufficient scope forbid the weak outcomes (Sec. 3.2)."""

    @pytest.mark.parametrize("name", [
        "mp+membar.gls", "dlb-mp+membar.gls", "dlb-lb+membar.gls",
        "cas-sl+membar.gls", "sl-future+fixed", "lb+membar.gls",
    ])
    @pytest.mark.parametrize("chip_name", ["TesC", "GTX6", "Titan", "HD7970"])
    def test_gl_fences_suppress_weakness(self, name, chip_name):
        assert _weak_runs(library.build(name), chip_name) == 0

    def test_cta_fence_sufficient_intra_cta(self):
        test = library.mp(fence0=None, fence1=None, placement="intra-cta")
        assert _weak_runs(test, "Titan") > 0
        from repro.ptx.types import Scope
        fenced = library.mp(fence0=Scope.CTA, fence1=Scope.CTA,
                            placement="intra-cta")
        assert _weak_runs(fenced, "Titan") == 0

    def test_cta_fence_leaks_inter_cta_on_titan(self):
        """Sec. 6 / Fig. 3: membar.cta does not reliably order inter-CTA."""
        from repro.ptx.types import Scope
        fenced = library.mp(fence0=Scope.CTA, fence1=Scope.CTA,
                            placement="inter-cta")
        assert _weak_runs(fenced, "Titan", iterations=3000) > 0


class TestChipDifferentiation:
    def test_corr_only_on_fermi_kepler(self):
        test = library.build("coRR")
        for weak_chip in ["GTX5", "TesC", "GTX6", "Titan"]:
            assert _weak_runs(test, weak_chip) > 0, weak_chip
        for strong_chip in ["GTX7", "HD6570", "HD7970", "GTX280"]:
            assert _weak_runs(test, strong_chip) == 0, strong_chip

    def test_gtx5_shows_no_inter_cta_cg_weakness(self):
        for name in ["dlb-mp", "dlb-lb", "cas-sl", "sl-future"]:
            assert _weak_runs(library.build(name), "GTX5", iterations=800) == 0

    def test_hd7970_load_buffering_dominates(self):
        lb = _weak_runs(library.build("lb"), "HD7970", iterations=2000)
        sb = _weak_runs(library.build("sb"), "HD7970", iterations=2000)
        assert lb > 100
        assert sb <= 2

    def test_volatile_ordered_on_maxwell(self):
        assert _weak_runs(library.build("mp-volatile"), "GTX7",
                          iterations=2000) == 0


class TestDeterminism:
    def test_same_seed_same_histogram(self):
        test = library.build("mp")
        a = run_iterations(test, chip("Titan"), 300, seed=7)
        b = run_iterations(test, chip("Titan"), 300, seed=7)
        assert a == b

    def test_different_seeds_differ_eventually(self):
        test = library.build("mp")
        a = run_iterations(test, chip("Titan"), 300, seed=7)
        b = run_iterations(test, chip("Titan"), 300, seed=8)
        assert a != b  # overwhelmingly likely


class TestSpinLoops:
    def test_spin_loop_terminates_when_released(self):
        text = """
        GPU_PTX spin
        { 0:.reg .s32 r0; 0:.reg .pred p; 1:.reg .s32 r9; }
         T0                    | T1               ;
         LOOP:                 | st.cg.s32 [x], 1 ;
         ld.cg.s32 r0, [x]     |                  ;
         setp.eq.s32 p, r0, 0  |                  ;
         @p bra LOOP           |                  ;
        ScopeTree (grid (cta (warp T0)) (cta (warp T1)))
        exists (0:r0=1)
        """
        test = parse_litmus(text)
        histogram = run_iterations(test, chip("Titan"), 50, seed=3)
        assert all(state.reg(0, "r0") == 1 for state in histogram)

    def test_livelock_raises_fuel_exhausted(self):
        text = """
        GPU_PTX forever
        { 0:.reg .s32 r0; 0:.reg .pred p; }
         T0 ;
         LOOP: ;
         ld.cg.s32 r0, [x] ;
         setp.eq.s32 p, r0, 0 ;
         @p bra LOOP ;
        exists (0:r0=1)
        """
        test = parse_litmus(text)
        machine = GpuMachine(test, chip("Titan"))
        with pytest.raises(FuelExhausted):
            machine.run_once(random.Random(0))


class TestModelSoundness:
    """The paper's Sec. 5.4 invariant: every behaviour the hardware (here:
    the simulator) exhibits must be allowed by the PTX model.

    The model covers ``.cg`` accesses only (Sec. 5.5), so tests using
    ``.ca`` or ``.volatile`` are excluded, exactly as in the paper.
    """

    CG_ONLY_TESTS = ["mp", "sb", "lb", "coRR", "dlb-lb", "cas-sl",
                     "sl-future", "exch-sl", "lb+membar.ctas",
                     "mp+membar.gls", "dlb-lb+membar.gls",
                     "cas-sl+membar.gls", "sl-future+fixed"]

    @pytest.mark.parametrize("name", CG_ONLY_TESTS)
    @pytest.mark.parametrize("chip_name", ["TesC", "Titan", "HD7970"])
    def test_sim_outcomes_subset_of_model(self, name, chip_name):
        test = library.build(name)
        allowed = allowed_final_states(enumerate_executions(test), model=PTX)
        histogram = run_iterations(test, chip(chip_name), 300, seed=5)
        for state in histogram:
            assert state in allowed, (
                "simulator outcome %s of %s on %s is forbidden by the model"
                % (state, name, chip_name))

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_soundness_random_seeds_dlb_lb(self, seed):
        test = library.build("dlb-lb")
        allowed = allowed_final_states(enumerate_executions(test), model=PTX)
        histogram = run_iterations(test, chip("Titan"), 60, seed=seed)
        assert set(histogram) <= allowed


class TestChipRegistry:
    def test_table1_complete(self):
        assert len(CHIPS) == 8
        years = [profile.year for profile in CHIPS.values()]
        assert min(years) == 2008 and max(years) == 2014

    def test_unknown_chip(self):
        with pytest.raises(KeyError):
            chip("RTX4090")

    def test_vendors(self):
        assert chip("Titan").vendor == "Nvidia"
        assert chip("HD7970").vendor == "AMD"
