"""Tests for the extended litmus shapes (WRC/ISA2/IRIW/RWC) and DOT export."""

import pytest

from repro.litmus.extended import (EXTENDED_TESTS, build_extended, iriw,
                                   isa2, rwc, wrc)
from repro.model.dot import to_dot, weak_witness_dot
from repro.model.enumerate import allowed_final_states, enumerate_executions
from repro.model.models import ptx_model, sc_model
from repro.ptx.types import Scope
from repro.sim import chip, run_iterations

PTX = ptx_model()
SC = sc_model()


class TestExtendedShapes:
    @pytest.mark.parametrize("name", sorted(EXTENDED_TESTS))
    def test_buildable_and_valid(self, name):
        test = build_extended(name)
        assert test.validate() == []
        assert enumerate_executions(test)

    @pytest.mark.parametrize("name", sorted(EXTENDED_TESTS))
    def test_weak_candidate_exists(self, name):
        test = build_extended(name)
        assert any(test.condition.holds(e.final_state)
                   for e in enumerate_executions(test))

    @pytest.mark.parametrize("builder", [wrc, isa2, iriw, rwc])
    def test_sc_forbids_all(self, builder):
        assert not SC.allows_condition(builder())

    @pytest.mark.parametrize("builder", [wrc, isa2, iriw, rwc])
    def test_ptx_allows_unfenced(self, builder):
        assert PTX.allows_condition(builder())

    def test_wrc_gl_fences_forbid(self):
        fenced = wrc(fence1=Scope.GL, fence2=Scope.GL)
        assert not PTX.allows_condition(fenced)

    def test_isa2_gl_fences_forbid(self):
        fenced = isa2(fence0=Scope.GL, fence1=Scope.GL, fence2=Scope.GL)
        assert not PTX.allows_condition(fenced)

    def test_wrc_cta_fence_insufficient_across_ctas(self):
        # The fences are cta-scoped but T2 sits in another CTA: the PTX
        # model still allows the weak outcome.
        fenced = wrc(fence1=Scope.CTA, fence2=Scope.CTA,
                     groups=(("T0", "T1"), ("T2",)))
        assert PTX.allows_condition(fenced)

    def test_iriw_gl_fences_forbid(self):
        # In the paper's axiomatisation the rmo relation includes rfe and
        # fr, so the IRIW cycle W -rfe-> R -fence-> R -fr-> W ... closes:
        # gl fences between the reads forbid the weak outcome.
        fenced = iriw(fence1=Scope.GL, fence3=Scope.GL)
        assert not PTX.allows_condition(fenced)

    def test_iriw_cta_fences_insufficient_across_ctas(self):
        # ...but cta-scoped fences between readers in distinct CTAs do
        # not close the cycle at the gl scope.
        fenced = iriw(fence1=Scope.CTA, fence3=Scope.CTA)
        assert PTX.allows_condition(fenced)

    def test_simulator_soundness_on_extended_shapes(self):
        for name in sorted(EXTENDED_TESTS):
            test = build_extended(name)
            allowed = allowed_final_states(enumerate_executions(test),
                                           model=PTX)
            histogram = run_iterations(test, chip("Titan"), 150, seed=3)
            assert set(histogram) <= allowed, name

    def test_iriw_observed_on_weak_chip(self):
        histogram = run_iterations(iriw(), chip("HD7970"), 4000, seed=1)
        test = iriw()
        weak = sum(count for state, count in histogram.items()
                   if test.condition.holds(state))
        assert weak >= 0  # presence depends on r_pass_r races; no crash


class TestDotExport:
    def test_contains_nodes_and_edges(self):
        test = build_extended("wrc")
        execution = enumerate_executions(test)[0]
        dot = to_dot(execution)
        assert dot.startswith("digraph execution {")
        assert dot.rstrip().endswith("}")
        assert "rf" in dot and "po" in dot
        assert "subgraph cluster_t0" in dot

    def test_weak_witness_annotated(self):
        from repro.litmus import library
        dot = weak_witness_dot(library.build("mp"), model=PTX)
        assert "allowed by ptx" in dot

    def test_no_witness_raises(self):
        from repro.litmus import library
        test = library.build("mp")
        # A condition no execution satisfies.
        from dataclasses import replace
        from repro.litmus.condition import Condition, RegEq
        impossible = replace(test, condition=Condition(
            "exists", RegEq(1, "r1", 99)))
        with pytest.raises(ValueError):
            weak_witness_dot(impossible)

    def test_balanced_braces(self):
        test = build_extended("iriw")
        execution = enumerate_executions(test)[0]
        dot = to_dot(execution, show_dependencies=False)
        assert dot.count("{") == dot.count("}")
