"""Model verdicts on the paper's tests (the Sec. 5 validation matrix).

These assertions pin down the paper's allowed/forbidden classification:
the PTX model must allow every behaviour observed on hardware (Tab. 2 and
the figures) and forbid the fenced/fixed variants the paper reports as no
longer observed.
"""

import pytest

from repro.litmus import library
from repro.model.models import (coherence_model, load_model, ptx_model,
                                rmo_model, sc_model, tso_model)

PTX = ptx_model()
SC = sc_model()
TSO = tso_model()
RMO = rmo_model()
COHERENCE = coherence_model()

#: (test name, expected PTX-model verdict for the weak final condition).
PTX_VERDICTS = [
    ("coRR", True),            # Fig. 1: observed on Fermi/Kepler
    ("mp", True),
    ("mp+membar.gls", False),  # the paper's experimental fix for mp
    ("mp-fig14", False),       # Fig. 14: cycle in rmo-cta
    ("sb", True),              # Tab. 6: observed on Titan
    ("SB-fig12", True),
    ("lb", True),              # Tab. 6
    ("lb+membar.ctas", True),  # Sec. 6: observed; Sorensen model wrongly forbids
    ("lb+membar.gls", False),
    ("mp-volatile", True),     # Fig. 5 (volatile modelled as plain access)
    ("dlb-mp", True),          # Fig. 7
    ("dlb-mp+membar.gls", False),
    ("dlb-lb", True),          # Fig. 8
    ("dlb-lb+membar.gls", False),
    ("cas-sl", True),          # Fig. 9
    ("cas-sl+membar.gls", False),
    ("exch-sl", True),         # Stuart-Owens lock (Tab. 2)
    ("sl-future", True),       # Fig. 11
    ("sl-future+fixed", False),
]


class TestPtxModel:
    @pytest.mark.parametrize("name,expected", PTX_VERDICTS)
    def test_verdict(self, name, expected):
        test = library.build(name)
        assert PTX.allows_condition(test) is expected, name

    def test_fig14_forbidden_by_cta_constraint(self):
        # The paper: "Our model forbids this execution by the constraint
        # cta-constraint" (Sec. 5.3, using intra-CTA mp of Fig. 14).
        test = library.build("mp-fig14")
        from repro.model.enumerate import enumerate_executions
        weak = [e for e in enumerate_executions(test)
                if test.condition.holds(e.final_state)]
        assert weak
        failed = PTX.failed_checks(weak[0])
        assert any(result.name == "cta-constraint" for result in failed)

    def test_witnesses_are_allowed_and_weak(self):
        test = library.build("coRR")
        for witness in PTX.witnesses(test):
            assert test.condition.holds(witness.final_state)
            assert PTX.allows(witness)


class TestComparisonModels:
    def test_sc_forbids_all_weak_idioms(self):
        for name in ["coRR", "mp", "sb", "lb", "dlb-mp", "cas-sl"]:
            assert not SC.allows_condition(library.build(name)), name

    def test_sc_allows_sequential_interleavings(self):
        # SC still has executions: the non-weak outcomes must survive.
        test = library.build("mp")
        assert len(SC.allowed_outcomes(test)) == 3  # (0,0), (0,1), (1,1)

    def test_tso_allows_only_store_buffering(self):
        assert TSO.allows_condition(library.build("sb"))
        for name in ["coRR", "mp", "lb"]:
            assert not TSO.allows_condition(library.build(name)), name

    def test_rmo_without_scopes_honours_any_fence(self):
        # Plain RMO treats membar.cta as a full fence: lb+membar.ctas is
        # forbidden — exactly the discrepancy with GPU hardware that
        # motivates scoped fences.
        assert not RMO.allows_condition(library.build("lb+membar.ctas"))
        assert PTX.allows_condition(library.build("lb+membar.ctas"))

    def test_rmo_agrees_with_ptx_on_unfenced_idioms(self):
        for name in ["coRR", "mp", "sb", "lb"]:
            test = library.build(name)
            assert RMO.allows_condition(test) == PTX.allows_condition(test), name

    def test_coherence_model_is_the_corr_discriminator(self):
        assert not COHERENCE.allows_condition(library.build("coRR"))
        assert COHERENCE.allows_condition(library.build("mp"))

    def test_model_strength_ordering(self):
        """SC ⊆ TSO ⊆ RMO ⊆ PTX on every paper test's weak outcome."""
        for name in sorted(library.PAPER_TESTS):
            test = library.build(name)
            sc = SC.allows_condition(test)
            tso = TSO.allows_condition(test)
            rmo = RMO.allows_condition(test)
            ptx = PTX.allows_condition(test)
            assert (not sc) or tso, name
            assert (not tso) or rmo, name
            assert (not rmo) or ptx, name


class TestRegistry:
    def test_load_model(self):
        assert load_model("ptx").name == "ptx"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            load_model("armv7")
