"""Tests for incantations, histograms and the litmus runner."""

import pytest

from repro.errors import ConfigurationError
from repro.litmus import library
from repro.litmus.condition import FinalState, parse_condition
from repro.harness import (ALL_COMBINATIONS, Histogram, Incantations, TABLE6,
                           best_for, default_iterations, efficacy, run_litmus,
                           run_matrix, run_paper_config)


class TestIncantationColumns:
    """The Table 6 column key must satisfy every comparison made in the
    prose of Sec. 4.3 (see DESIGN.md for the derivation)."""

    def test_column_one_is_none(self):
        assert Incantations.from_column(1) == Incantations.none()

    def test_column_sixteen_is_all(self):
        assert Incantations.from_column(16) == Incantations.all()

    def test_column_five_is_bank_conflicts_alone(self):
        # "general bank conflicts alone do not expose any weak behaviours
        #  (see column 5)"
        assert Incantations.from_column(5) == Incantations(bank_conflicts=True)

    def test_columns_12_and_16_differ_by_bank_conflicts(self):
        a, b = Incantations.from_column(12), Incantations.from_column(16)
        assert a.memory_stress and a.thread_sync and a.thread_rand
        assert not a.bank_conflicts and b.bank_conflicts

    def test_columns_15_and_16_differ_by_thread_randomisation(self):
        a, b = Incantations.from_column(15), Incantations.from_column(16)
        assert not a.thread_rand and b.thread_rand
        assert (a.memory_stress, a.bank_conflicts, a.thread_sync) == \
               (b.memory_stress, b.bank_conflicts, b.thread_sync)

    def test_columns_10_and_12_differ_by_thread_sync(self):
        a, b = Incantations.from_column(10), Incantations.from_column(12)
        assert not a.thread_sync and b.thread_sync

    def test_columns_1_to_8_have_no_memory_stress(self):
        for column in range(1, 9):
            assert not Incantations.from_column(column).memory_stress

    def test_round_trip(self):
        for column in range(1, 17):
            assert Incantations.from_column(column).column == column

    def test_all_combinations_order(self):
        assert [inc.column for inc in ALL_COMBINATIONS] == list(range(1, 17))

    def test_bad_column_rejected(self):
        with pytest.raises(ValueError):
            Incantations.from_column(0)


class TestEfficacy:
    def test_no_incantations_is_zero_on_nvidia(self):
        # "The setup of Sec. 4.2 only witnessed weak behaviours in
        #  combination with incantations on Nvidia chips."
        for idiom in ("coRR", "lb", "mp", "sb"):
            assert efficacy("Nvidia", idiom, Incantations.none()) == 0.0

    def test_amd_weak_without_incantations(self):
        assert efficacy("AMD", "lb", Incantations.none()) > 0.0

    def test_best_is_one(self):
        for vendor in ("Nvidia", "AMD"):
            for idiom in ("coRR", "lb", "mp", "sb"):
                best = best_for(vendor, idiom)
                assert efficacy(vendor, idiom, best) == pytest.approx(1.0)

    def test_best_for_nvidia_corr_uses_all_four(self):
        assert best_for("Nvidia", "coRR") == Incantations.all()

    def test_best_for_nvidia_inter_cta_is_column_12(self):
        for idiom in ("lb", "mp", "sb"):
            assert best_for("Nvidia", idiom).column == 12

    def test_unknown_idiom_falls_back_to_mp(self):
        inc = Incantations.from_column(12)
        assert efficacy("Nvidia", "exotic", inc) == efficacy("Nvidia", "mp", inc)

    def test_table6_shape(self):
        for row in TABLE6.values():
            assert len(row) == 16


class TestHistogram:
    def _state(self, value):
        return FinalState.make({(0, "r0"): value})

    def test_add_and_total(self):
        histogram = Histogram()
        histogram.add(self._state(0), 3)
        histogram.add(self._state(1))
        assert histogram.total == 4
        assert len(histogram) == 2

    def test_observations(self):
        histogram = Histogram()
        histogram.add(self._state(0), 3)
        histogram.add(self._state(1), 7)
        condition = parse_condition("exists (0:r0=1)")
        assert histogram.observations(condition) == 7
        assert histogram.per_100k(condition) == pytest.approx(70000.0)

    def test_witnesses(self):
        histogram = Histogram()
        histogram.add(self._state(1), 2)
        condition = parse_condition("exists (0:r0=1)")
        assert histogram.witnesses(condition) == [self._state(1)]

    def test_merged(self):
        a, b = Histogram(), Histogram()
        a.add(self._state(0), 1)
        b.add(self._state(0), 2)
        assert a.merged(b).total == 3

    def test_merge_disjoint(self):
        a, b = Histogram(), Histogram()
        a.add(self._state(0), 3)
        b.add(self._state(1), 4)
        merged = Histogram.merge([a, b])
        assert merged.counts == {self._state(0): 3, self._state(1): 4}
        assert merged.total == 7

    def test_merge_overlapping(self):
        a, b, c = Histogram(), Histogram(), Histogram()
        a.add(self._state(0), 3)
        b.add(self._state(0), 2)
        b.add(self._state(1), 1)
        c.add(self._state(0), 5)
        merged = Histogram.merge([a, b, c])
        assert merged.counts == {self._state(0): 10, self._state(1): 1}

    def test_merge_with_empty_histograms(self):
        a = Histogram()
        a.add(self._state(0), 2)
        merged = Histogram.merge([Histogram(), a, Histogram()])
        assert merged.counts == a.counts
        assert Histogram.merge([]).total == 0
        assert Histogram.merge([Histogram(), Histogram()]).counts == {}

    def test_merge_is_order_independent(self):
        a, b = Histogram(), Histogram()
        a.add(self._state(0), 1)
        a.add(self._state(1), 2)
        b.add(self._state(1), 3)
        assert Histogram.merge([a, b]).counts == Histogram.merge([b, a]).counts

    def test_merge_does_not_mutate_inputs(self):
        a, b = Histogram(), Histogram()
        a.add(self._state(0), 1)
        b.add(self._state(0), 2)
        Histogram.merge([a, b])
        assert a.counts == {self._state(0): 1}
        assert b.counts == {self._state(0): 2}

    def test_pretty_marks_witnesses(self):
        histogram = Histogram()
        histogram.add(self._state(1), 5)
        condition = parse_condition("exists (0:r0=1)")
        assert "*witness*" in histogram.pretty(condition)


class TestRunner:
    def test_no_incantations_no_weakness_on_nvidia(self):
        result = run_litmus(library.build("mp"), "Titan", iterations=400, seed=1)
        assert result.observations == 0

    def test_paper_config_witnesses_mp_on_titan(self):
        result = run_paper_config(library.build("mp"), "Titan",
                                  iterations=2000, seed=1)
        assert result.observations > 0
        assert result.per_100k > 0

    def test_amd_weak_even_without_incantations(self):
        result = run_litmus(library.build("lb"), "HD7970", iterations=1500,
                            seed=1)
        assert result.observations > 0

    def test_result_summary_format(self):
        result = run_paper_config(library.build("mp"), "Titan",
                                  iterations=200, seed=1)
        assert "mp on Titan" in result.summary()

    def test_run_matrix_keys(self):
        results = run_matrix([library.build("mp")], ["Titan", "GTX7"],
                             iterations=100, seed=1)
        assert set(results) == {("mp", "Titan"), ("mp", "GTX7")}

    def test_iterations_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "37")
        result = run_litmus(library.build("mp"), "GTX7")
        assert result.iterations == 37


class TestDefaultIterations:
    def test_fallback_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_ITERS", raising=False)
        assert default_iterations(1234) == 1234

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "42")
        assert default_iterations() == 42

    def test_clamped_to_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "-5")
        assert default_iterations() == 1

    def test_non_integer_fails_with_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "lots")
        with pytest.raises(ConfigurationError) as excinfo:
            default_iterations()
        assert "REPRO_ITERS" in str(excinfo.value)
        assert "lots" in str(excinfo.value)
