"""Tests for the PTX instruction parser and printer."""

import pytest

from repro.errors import PtxSyntaxError
from repro.ptx import (Add, AtomAdd, AtomCas, AtomExch, AtomInc, Bra, Cvt,
                       Guard, Label, Ld, Membar, Mov, Setp, St, Xor)
from repro.ptx import Addr, CacheOp, Imm, Loc, Reg, Scope, TypeSpec
from repro.ptx import parse_instruction, parse_lines, parse_operand


class TestOperands:
    def test_register(self):
        assert parse_operand("r0") == Reg("r0")

    def test_predicate_register(self):
        assert parse_operand("p1") == Reg("p1")

    def test_immediate(self):
        assert parse_operand("42") == Imm(42)

    def test_negative_immediate(self):
        assert parse_operand("-1") == Imm(-1)

    def test_hex_immediate(self):
        assert parse_operand("0x80000000") == Imm(0x80000000)

    def test_location(self):
        assert parse_operand("x") == Loc("x")

    def test_address_location(self):
        assert parse_operand("[x]") == Addr(Loc("x"))

    def test_address_register(self):
        assert parse_operand("[r1]") == Addr(Reg("r1"))

    def test_address_offset(self):
        assert parse_operand("[r1+4]") == Addr(Reg("r1"), 4)

    def test_known_registers_override_heuristic(self):
        assert parse_operand("x", registers={"x"}) == Reg("x")
        assert parse_operand("[x]", registers={"x"}) == Addr(Reg("x"))

    def test_empty_operand_rejected(self):
        with pytest.raises(PtxSyntaxError):
            parse_operand("")


class TestLoads:
    def test_plain_load(self):
        instruction = parse_instruction("ld.cg.s32 r1, [x]")
        assert instruction == Ld(Reg("r1"), Addr(Loc("x")), cop=CacheOp.CG)

    def test_paper_abbreviation_g(self):
        assert parse_instruction("ld.g r1, [x]").cop is CacheOp.CG

    def test_paper_abbreviation_a(self):
        assert parse_instruction("ld.a r1, [x]").cop is CacheOp.CA

    def test_volatile_load(self):
        instruction = parse_instruction("ld.volatile.s32 r2, [x]")
        assert instruction.volatile
        assert instruction.cop is None

    def test_default_cop_is_l1(self):
        assert parse_instruction("ld.s32 r1, [x]").effective_cop is CacheOp.CA

    def test_load_needs_two_operands(self):
        with pytest.raises(PtxSyntaxError):
            parse_instruction("ld.cg.s32 r1")


class TestStores:
    def test_plain_store(self):
        instruction = parse_instruction("st.cg.s32 [x], 1")
        assert instruction == St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)

    def test_store_register_source(self):
        assert parse_instruction("st.cg [y], r0").src == Reg("r0")

    def test_volatile_store(self):
        assert parse_instruction("st.volatile [x], 1").volatile

    def test_l1_store_operator_rejected(self):
        # The paper notes there is no L1-targeting store operator.
        with pytest.raises(PtxSyntaxError):
            parse_instruction("st.ca [x], 1")


class TestAtomics:
    def test_cas(self):
        instruction = parse_instruction("atom.cas.b32 r1, [m], 0, 1")
        assert instruction == AtomCas(Reg("r1"), Addr(Loc("m")), Imm(0), Imm(1))

    def test_exch(self):
        instruction = parse_instruction("atom.exch r0, [m], 0")
        assert instruction == AtomExch(Reg("r0"), Addr(Loc("m")), Imm(0))

    def test_inc(self):
        instruction = parse_instruction("atom.inc.u32 r0, [c]")
        assert instruction == AtomInc(Reg("r0"), Addr(Loc("c")), typ=TypeSpec.U32)

    def test_add(self):
        instruction = parse_instruction("atom.add.u32 r0, [c], 5")
        assert instruction == AtomAdd(Reg("r0"), Addr(Loc("c")), Imm(5),
                                      typ=TypeSpec.U32)

    def test_unknown_atom_rejected(self):
        with pytest.raises(PtxSyntaxError):
            parse_instruction("atom.min r0, [c], 5")


class TestFencesAndControl:
    def test_membar_scopes(self):
        assert parse_instruction("membar.cta") == Membar(Scope.CTA)
        assert parse_instruction("membar.gl") == Membar(Scope.GL)
        assert parse_instruction("membar.sys") == Membar(Scope.SYS)

    def test_paper_ta_alias(self):
        # The paper's figures render "cta" as "ta".
        assert parse_instruction("membar.ta") == Membar(Scope.CTA)

    def test_membar_needs_scope(self):
        with pytest.raises(PtxSyntaxError):
            parse_instruction("membar")

    def test_label(self):
        assert parse_instruction("LOOP:") == Label("LOOP")

    def test_bra(self):
        assert parse_instruction("bra LOOP") == Bra("LOOP")

    def test_guarded_instruction(self):
        instruction = parse_instruction("@p ld.cg r1, [x]")
        assert instruction.guard == Guard("p", negated=False)

    def test_negated_guard(self):
        instruction = parse_instruction("@!p4 membar.gl")
        assert instruction.guard == Guard("p4", negated=True)

    def test_bare_negated_guard_paper_style(self):
        instruction = parse_instruction("!p4 ld.cg r1, [d]")
        assert instruction.guard == Guard("p4", negated=True)

    def test_bare_positive_guard_paper_style(self):
        instruction = parse_instruction("p1 membar.gl")
        assert instruction.guard == Guard("p1", negated=False)


class TestAluAndPredicates:
    def test_mov_immediate(self):
        assert parse_instruction("mov.s32 r0, 1") == Mov(Reg("r0"), Imm(1))

    def test_mov_location_address(self):
        assert parse_instruction("mov.s32 r4, x") == Mov(Reg("r4"), Loc("x"))

    def test_add(self):
        instruction = parse_instruction("add.s32 r2, r2, 1")
        assert instruction == Add(Reg("r2"), Reg("r2"), Imm(1))

    def test_xor(self):
        instruction = parse_instruction("xor.b32 r2, r1, 0x07f3a001")
        assert instruction == Xor(Reg("r2"), Reg("r1"), Imm(0x07f3a001),
                                  typ=TypeSpec.B32)

    def test_cvt(self):
        instruction = parse_instruction("cvt.u64.u32 r3, r2")
        assert instruction == Cvt(Reg("r3"), Reg("r2"))

    def test_setp(self):
        instruction = parse_instruction("setp.eq.s32 p2, r1, 0")
        assert instruction == Setp("eq", Reg("p2"), Reg("r1"), Imm(0))

    def test_setp_requires_comparison(self):
        with pytest.raises(PtxSyntaxError):
            parse_instruction("setp.lt p, r1, 0")


class TestRoundTrip:
    SAMPLES = [
        "ld.cg.s32 r1, [x]",
        "ld.volatile.s32 r2, [x]",
        "st.cg.s32 [x], 1",
        "st.volatile.s32 [t], r2",
        "atom.cas.b32 r1, [m], 0, 1",
        "atom.exch.b32 r0, [m], 0",
        "membar.gl",
        "@p2 membar.gl",
        "@!p4 ld.cg.s32 r1, [d]",
        "mov.s32 r0, 1",
        "add.s32 r2, r2, 1",
        "setp.eq.s32 p2, r1, 0",
        "bra END",
        "END:",
    ]

    @pytest.mark.parametrize("text", SAMPLES)
    def test_print_parse_fixpoint(self, text):
        first = parse_instruction(text)
        second = parse_instruction(str(first))
        assert first == second


class TestParseLines:
    def test_multi_line_with_comments(self):
        instructions = parse_lines("""
            // writer
            st.cg.s32 [x], 1
            membar.gl
            st.cg.s32 [y], 1  // flag
        """)
        assert len(instructions) == 3
        assert isinstance(instructions[1], Membar)

    def test_error_carries_line_number(self):
        with pytest.raises(PtxSyntaxError) as excinfo:
            parse_lines("st.cg [x], 1\nfrobnicate r0")
        assert "line 2" in str(excinfo.value)
