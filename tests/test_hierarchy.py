"""Tests for scope trees and memory maps."""

import pytest

from repro.errors import LitmusSyntaxError, ScopeTreeError
from repro.hierarchy import MemoryMap, ScopeTree
from repro.ptx.types import MemorySpace


class TestScopeTreeBuilders:
    def test_intra_warp(self):
        tree = ScopeTree.intra_warp(["T0", "T1"])
        assert tree.same_warp("T0", "T1")
        assert tree.classify() == "intra-warp"

    def test_intra_cta(self):
        tree = ScopeTree.intra_cta(["T0", "T1"])
        assert tree.same_cta("T0", "T1")
        assert not tree.same_warp("T0", "T1")
        assert tree.classify() == "intra-cta"

    def test_inter_cta(self):
        tree = ScopeTree.inter_cta(["T0", "T1"])
        assert not tree.same_cta("T0", "T1")
        assert tree.same_grid("T0", "T1")
        assert tree.classify() == "inter-cta"

    def test_for_threads(self):
        tree = ScopeTree.for_threads(["T0", "T1", "T2"], "inter-cta")
        assert tree.n_ctas == 3

    def test_for_threads_unknown_config(self):
        with pytest.raises(ScopeTreeError):
            ScopeTree.for_threads(["T0"], "inter-galactic")

    def test_threads_in_order(self):
        tree = ScopeTree.inter_cta(["T0", "T1", "T2"])
        assert tree.threads == ["T0", "T1", "T2"]

    def test_duplicate_thread_rejected(self):
        with pytest.raises(ScopeTreeError):
            ScopeTree.intra_cta(["T0", "T0"])

    def test_empty_tree_rejected(self):
        with pytest.raises(ScopeTreeError):
            ScopeTree(())


class TestScopeTreeParse:
    def test_fig12_syntax(self):
        tree = ScopeTree.parse("(grid (cta (warp T0) (warp T1)))")
        assert tree.same_cta("T0", "T1")
        assert not tree.same_warp("T0", "T1")

    def test_scopetree_keyword_accepted(self):
        tree = ScopeTree.parse("ScopeTree (grid (cta (warp T0) (warp T1)))")
        assert tree.classify() == "intra-cta"

    def test_inter_cta_parse(self):
        tree = ScopeTree.parse("(grid (cta (warp T0)) (cta (warp T1)))")
        assert tree.classify() == "inter-cta"

    def test_opencl_words(self):
        tree = ScopeTree.parse("(grid (work-group (wavefront T0 T1)))")
        assert tree.same_warp("T0", "T1")

    def test_round_trip(self):
        tree = ScopeTree.parse("(grid (cta (warp T0) (warp T1)) (cta (warp T2)))")
        assert ScopeTree.parse(str(tree)) == tree

    def test_unbalanced_rejected(self):
        with pytest.raises(ScopeTreeError):
            ScopeTree.parse("(grid (cta (warp T0))")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ScopeTreeError):
            ScopeTree.parse("(grid (cta (warp T0))) extra")

    def test_unknown_thread_placement(self):
        tree = ScopeTree.parse("(grid (cta (warp T0)))")
        with pytest.raises(ScopeTreeError):
            tree.placement("T9")


class TestMemoryMap:
    def test_default_is_global(self):
        assert MemoryMap().space_of("x") is MemorySpace.GLOBAL

    def test_parse(self):
        memory_map = MemoryMap.parse("x: shared, y: global")
        assert memory_map.space_of("x") is MemorySpace.SHARED
        assert memory_map.space_of("y") is MemorySpace.GLOBAL

    def test_round_trip(self):
        memory_map = MemoryMap.parse("x: shared, y: global")
        assert MemoryMap.parse(str(memory_map)) == memory_map

    def test_string_spaces_coerced(self):
        assert MemoryMap({"x": "shared"}).space_of("x") is MemorySpace.SHARED

    def test_unknown_space_rejected(self):
        with pytest.raises(LitmusSyntaxError):
            MemoryMap({"x": "texture"})

    def test_malformed_entry_rejected(self):
        with pytest.raises(LitmusSyntaxError):
            MemoryMap.parse("x shared")

    def test_all_global(self):
        assert MemoryMap({"x": "global"}).all_global()
        assert not MemoryMap({"x": "shared"}).all_global()
