"""Tests for the repro.api execution layer: specs, backends, sharding,
sessions, caching and campaign aggregation."""

import pytest

from repro.api import (BEST, CampaignResult, ModelBackend, ResultCache,
                       RunSpec, Session, SimBackend, make_backend, matrix,
                       parse_incantations, plan_shards, shard_seed)
from repro.errors import ReproError
from repro.harness import Histogram, Incantations, run_litmus, run_matrix
from repro.litmus import library
from repro.model.models import load_model


def spec_for(name="mp", chip="Titan", iterations=300, seed=3,
             incantations=BEST):
    return RunSpec.make(library.build(name), chip, incantations=incantations,
                        iterations=iterations, seed=seed)


class TestRunSpec:
    def test_make_resolves_chip_and_incantations(self):
        spec = spec_for()
        assert spec.chip.short == "Titan"
        assert isinstance(spec.incantations, Incantations)
        # BEST resolves to the paper's reporting configuration.
        assert spec.incantations.column == 12

    def test_none_means_bare_setup(self):
        spec = spec_for(incantations=None)
        assert spec.incantations == Incantations.none()

    def test_unknown_chip_rejected(self):
        with pytest.raises(ReproError):
            spec_for(chip="GTX9999")

    def test_zero_iterations_rejected_not_defaulted(self):
        with pytest.raises(ReproError):
            spec_for(iterations=0)
        with pytest.raises(ReproError):
            spec_for(iterations=-10)

    def test_fingerprint_memoised(self):
        spec = spec_for()
        first = spec.fingerprint()
        assert spec.fingerprint() is first  # cached digest, same object

    def test_fingerprint_is_stable(self):
        assert spec_for().fingerprint() == spec_for().fingerprint()

    def test_fingerprint_depends_on_every_field(self):
        base = spec_for()
        variants = [
            spec_for(name="lb"),
            spec_for(chip="GTX6"),
            spec_for(iterations=301),
            spec_for(seed=4),
            spec_for(incantations="none"),
        ]
        fingerprints = {base.fingerprint()}
        for variant in variants:
            assert variant.fingerprint() not in fingerprints
            fingerprints.add(variant.fingerprint())

    def test_matrix_is_cartesian(self):
        tests = [library.build("mp"), library.build("lb")]
        specs = matrix(tests, ["Titan", "GTX6"], iterations=10)
        assert [spec.key for spec in specs] == [
            ("mp", "Titan"), ("mp", "GTX6"),
            ("lb", "Titan"), ("lb", "GTX6")]


class TestParseIncantations:
    def test_best_sentinel(self):
        assert parse_incantations("best") is BEST

    def test_none_and_all(self):
        assert parse_incantations("none") == Incantations.none()
        assert parse_incantations("all") == Incantations.all()

    def test_column(self):
        assert parse_incantations("12") == Incantations.from_column(12)

    def test_flags(self):
        assert parse_incantations("stress+sync+random") == Incantations(
            memory_stress=True, thread_sync=True, thread_rand=True)

    def test_unknown_flag_rejected(self):
        with pytest.raises(ReproError):
            parse_incantations("stress+banana")

    def test_out_of_range_column_rejected_cleanly(self):
        with pytest.raises(ReproError):
            parse_incantations("17")


class TestShardPlanning:
    def test_single_shard_for_small_specs(self):
        shards = plan_shards(spec_for(iterations=300), shard_size=1000)
        assert len(shards) == 1
        assert shards[0].iterations == 300

    def test_shard_zero_uses_the_spec_seed(self):
        spec = spec_for(seed=17)
        assert plan_shards(spec, 100)[0].seed == 17

    def test_decomposition_covers_iterations_exactly(self):
        spec = spec_for(iterations=250)
        shards = plan_shards(spec, 100)
        assert [shard.iterations for shard in shards] == [100, 100, 50]
        assert [shard.index for shard in shards] == [0, 1, 2]

    def test_later_shards_have_distinct_deterministic_seeds(self):
        spec = spec_for(iterations=500)
        seeds = [shard.seed for shard in plan_shards(spec, 100)]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [shard.seed for shard in plan_shards(spec, 100)]

    def test_shard_seeds_differ_between_specs(self):
        assert (shard_seed(spec_for(seed=1), 1)
                != shard_seed(spec_for(seed=2), 1))


class TestDeterministicParallelism:
    """Acceptance: jobs>1 merges bit-identically to the serial path."""

    def test_threaded_jobs_match_serial(self):
        spec = spec_for(iterations=450, seed=3)
        serial = Session(jobs=1, shard_size=100, cache=False).run(spec)
        parallel = Session(jobs=4, shard_size=100, cache=False).run(spec)
        assert serial.histogram.counts == parallel.histogram.counts
        assert serial.histogram.total == 450

    def test_process_jobs_match_serial(self):
        spec = spec_for(iterations=200, seed=9)
        serial = Session(jobs=1, shard_size=50, cache=False).run(spec)
        parallel = Session(jobs=2, shard_size=50, cache=False,
                           executor="process").run(spec)
        assert serial.histogram.counts == parallel.histogram.counts

    def test_worker_count_does_not_affect_results(self):
        spec = spec_for(name="lb", chip="HD7970", iterations=300, seed=5)
        histograms = [Session(jobs=jobs, shard_size=64, cache=False)
                      .run(spec).histogram.counts
                      for jobs in (1, 2, 7)]
        assert histograms[0] == histograms[1] == histograms[2]

    def test_single_shard_matches_legacy_runner_stream(self):
        """Shard 0 reuses the spec seed, so a one-shard session run is
        bit-identical to the pre-api serial loop (and to run_litmus)."""
        test = library.build("mp")
        wrapped = run_litmus(test, "Titan", incantations=Incantations.all(),
                             iterations=400, seed=11)
        direct = Session(cache=False).run(
            RunSpec.make(test, "Titan", incantations=Incantations.all(),
                         iterations=400, seed=11))
        assert wrapped.histogram.counts == direct.histogram.counts


class TestCaching:
    """Acceptance: a warm cache performs zero new simulations."""

    def test_repeated_campaign_hits_memory_cache(self):
        session = Session(jobs=2, shard_size=100)
        tests = [library.build("mp"), library.build("lb")]
        first = session.campaign(tests, ["Titan", "GTX6"], iterations=250)
        executed_after_first = session.stats.executed
        simulated_after_first = session.stats.simulated_iterations
        second = session.campaign(tests, ["Titan", "GTX6"], iterations=250)
        assert session.stats.executed == executed_after_first
        assert session.stats.simulated_iterations == simulated_after_first
        assert session.stats.cache_hits == len(second)
        assert second.cached_cells == len(second)
        for key, result in second.results.items():
            assert result.histogram.counts == first.get(*key).histogram.counts

    def test_disk_cache_survives_sessions(self, tmp_path):
        spec = spec_for(iterations=200, seed=2)
        warm = Session(cache_dir=str(tmp_path))
        original = warm.run(spec)
        assert warm.stats.executed == 1

        cold = Session(cache_dir=str(tmp_path))
        replayed = cold.run(spec)
        assert cold.stats.executed == 0
        assert cold.stats.simulated_iterations == 0
        assert replayed.cached
        assert replayed.histogram.counts == original.histogram.counts

    def test_different_seeds_do_not_collide(self):
        session = Session()
        a = session.run(spec_for(seed=1))
        b = session.run(spec_for(seed=2))
        assert session.stats.executed == 2
        assert a.spec.fingerprint() != b.spec.fingerprint()

    def test_cache_disabled(self):
        session = Session(cache=False)
        session.run(spec_for())
        session.run(spec_for())
        assert session.stats.executed == 2

    def test_different_shard_decompositions_cached_separately(self, tmp_path):
        """The histogram is a function of the shard decomposition (seeds
        derive per shard), so sessions with different effective
        decompositions must not share cache entries."""
        spec = spec_for(iterations=400, seed=3)
        fine = Session(shard_size=100, cache_dir=str(tmp_path))
        coarse = Session(shard_size=25000, cache_dir=str(tmp_path))
        fine_result = fine.run(spec)
        coarse_result = coarse.run(spec)
        assert coarse.stats.executed == 1  # not served from fine's entry
        assert not coarse_result.cached
        fresh = Session(shard_size=25000, cache=False).run(spec)
        assert coarse_result.histogram.counts == fresh.histogram.counts
        assert fine_result.histogram.counts != coarse_result.histogram.counts

    def test_covering_shard_sizes_share_cache_entries(self):
        """Any two shard sizes >= iterations produce the identical single
        shard, so their results are interchangeable cache entries."""
        cache = ResultCache()
        Session(shard_size=1000, cache=cache).run(spec_for(iterations=400))
        session = Session(shard_size=9999, cache=cache)
        session.run(spec_for(iterations=400))
        assert session.stats.executed == 0

    def test_duplicate_specs_in_one_plan_execute_once(self):
        session = Session(cache=False)
        spec = spec_for(iterations=200)
        results = session.run_specs([spec, spec, spec_for(name="lb"), spec])
        assert session.stats.executed == 2
        assert session.stats.deduplicated == 2
        assert results[0].histogram.counts == results[3].histogram.counts
        assert results[2].spec.key[0] == "lb"

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        session.run(spec_for())
        for path in tmp_path.iterdir():
            path.write_text("{ not json")
        cold = Session(cache_dir=str(tmp_path))
        result = cold.run(spec_for())
        assert cold.stats.executed == 1
        assert not result.cached

    def test_shared_cache_instance_across_sessions(self):
        cache = ResultCache()
        Session(cache=cache).run(spec_for())
        session = Session(cache=cache)
        session.run(spec_for())
        assert session.stats.executed == 0


class TestBackends:
    def test_make_backend_resolves_names(self):
        assert make_backend("sim").name == "sim"
        assert make_backend("model").name == "model:ptx"
        assert make_backend("model:sc").name == "model:sc"
        backend = SimBackend()
        assert make_backend(backend) is backend

    def test_make_backend_rejects_unknown(self):
        with pytest.raises(ReproError):
            make_backend("quantum")

    def test_model_backend_matches_axiomatic_verdicts(self):
        session = Session(backend="model")
        model = load_model("ptx")
        for name in ("mp", "mp+membar.gls", "coRR"):
            test = library.build(name)
            result = session.run(test, "Titan", iterations=1)
            assert result.allowed == model.allows_condition(test)

    def test_sim_and_model_share_result_shape(self):
        test = library.build("mp")
        sim = Session(backend="sim").run(test, "Titan", iterations=200)
        model = Session(backend="model").run(test, "Titan", iterations=1)
        for result in (sim, model):
            assert result.test.name == "mp"
            assert result.chip.short == "Titan"
            assert isinstance(result.observations, int)
            assert "mp on Titan" in result.summary()

    def test_model_campaign_enumerates_each_test_once_across_chips(self):
        """A verdict depends only on the test, so sweeping chips must
        not repeat the exhaustive enumeration per chip."""
        session = Session(backend="model")
        campaign = session.campaign([library.build("mp")],
                                    ["Titan", "GTX6", "HD7970"],
                                    iterations=1)
        assert len(campaign) == 3
        assert session.stats.executed == 1
        histograms = [result.histogram.counts for result in campaign]
        assert histograms[0] == histograms[1] == histograms[2]

    def test_model_cache_signature_still_tracks_test_content(self):
        session = Session(backend="model")
        session.run(library.build("mp"), "Titan", iterations=1)
        session.run(library.build("lb"), "Titan", iterations=1)
        assert session.stats.executed == 2

    def test_cached_histograms_are_mutation_safe(self):
        session = Session()
        spec = spec_for(iterations=100)
        first = session.run(spec)
        pristine = dict(first.histogram.counts)
        first.histogram.add(next(iter(first.histogram.counts)), 999)
        second = session.run(spec)
        assert second.cached
        assert second.histogram.counts == pristine

    def test_model_results_cache_separately_from_sim(self):
        cache = ResultCache()
        Session(backend="sim", cache=cache).run(spec_for())
        session = Session(backend="model", cache=cache)
        session.run(spec_for())
        assert session.stats.executed == 1  # not satisfied by the sim entry


class TestSessionApi:
    def test_run_requires_chip_without_spec(self):
        with pytest.raises(ReproError):
            Session().run(library.build("mp"))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ReproError):
            Session(jobs=0)
        with pytest.raises(ReproError):
            Session(executor="fiber")
        with pytest.raises(ReproError):
            Session(shard_size=0)

    def test_run_specs_preserves_plan_order(self):
        session = Session()
        specs = [spec_for(name="lb"), spec_for(name="mp"),
                 spec_for(name="sb")]
        results = session.run_specs(specs)
        assert [result.spec.key[0] for result in results] == ["lb", "mp", "sb"]

    def test_run_matrix_alias(self):
        session = Session()
        campaign = session.run_matrix([library.build("mp")], ["Titan"],
                                      iterations=50)
        assert isinstance(campaign, CampaignResult)

    def test_legacy_run_matrix_wrapper_routes_through_session(self):
        session = Session(jobs=2, shard_size=100)
        results = run_matrix([library.build("mp")], ["Titan", "GTX6"],
                             iterations=150, seed=1, session=session)
        assert set(results) == {("mp", "Titan"), ("mp", "GTX6")}
        assert session.stats.executed == 2


class TestCampaignResult:
    def _campaign(self):
        session = Session()
        tests = [library.build("mp"), library.build("lb")]
        return session.campaign(tests, ["Titan", "HD7970"], iterations=250,
                                seed=1)

    def test_views(self):
        campaign = self._campaign()
        assert campaign.tests == ["mp", "lb"]
        assert campaign.chips == ["Titan", "HD7970"]
        assert set(campaign.by_test("mp")) == {"Titan", "HD7970"}
        assert set(campaign.by_chip("Titan")) == {"mp", "lb"}
        assert len(campaign) == 4
        assert ("mp", "Titan") in campaign

    def test_summary_table_shape(self):
        table = self._campaign().summary_table()
        lines = table.splitlines()
        assert lines[0].split() == ["obs/100k", "Titan", "HD7970"]
        assert len(lines) == 4  # header, rule, two test rows

    def test_summary_table_with_paper_counts(self):
        table = self._campaign().summary_table(
            paper={("mp", "Titan"): 2921})
        assert "paper" in table

    def test_weak_cells_and_totals(self):
        campaign = self._campaign()
        assert set(campaign.weak_cells()) <= set(campaign.results)
        assert campaign.total_iterations == 4 * 250
        assert "4 cells" in campaign.summary()
