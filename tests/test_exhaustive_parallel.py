"""Property tests for branch-sharded parallel exploration.

The determinism invariant the parallel mode rests on: an exploration's
root plan is a pure function of the cell, every ``root_plan()`` entry
is an independent sub-exploration, and merging the per-branch results
in shard-index order reproduces the serial exploration bit for bit.
Therefore ``--jobs N`` — any N, thread or process pool — must yield
byte-identical histograms, transition counts and witness verdicts to
``--jobs 1`` over any corpus.  These tests sweep jobs in {1, 2, 4}
against both executor kinds on a randomized diy corpus on a weak chip
(Titan) and the in-order control (GTX280), plus the scenario registry
cells the paper's claims hang on.
"""

import pytest

from repro.api.spec import RunSpec
from repro.apps.scenario import ScenarioSpec, get_scenario
from repro.diy import (default_pool, fences_from_names, generate_tests,
                       scopes_from_names)
from repro.exhaustive import (ExhaustiveBackend, exhaustive_session,
                              exhaustive_verdict)
from repro.exhaustive.explore import Explorer
from repro.harness.histogram import Histogram
from repro.perf.exhaustbench import balance_bound, exhaust_corpus_test
from repro.sim import CHIPS

PARALLEL_CONFIGS = ((1, "thread"), (2, "thread"), (4, "thread"),
                    (2, "process"), (4, "process"))


def diy_corpus(max_tests=8):
    """A small deterministic diy corpus (seeded pool, fixed order)."""
    pool = default_pool(scopes=scopes_from_names(["dev", "cta"]),
                        fences=fences_from_names(["cta", "gl"]))
    return generate_tests(pool, max_length=4, max_tests=max_tests)


class TestParallelBitIdentity:
    @pytest.mark.parametrize("chip_short", ("Titan", "GTX280"))
    def test_diy_corpus_identical_across_jobs_and_executors(self,
                                                            chip_short):
        chip = CHIPS[chip_short]
        specs = [RunSpec.make(test, chip, iterations=1, seed=0)
                 for test in diy_corpus()]
        baseline = None
        for jobs, executor in PARALLEL_CONFIGS:
            session = exhaustive_session(jobs=jobs, executor=executor,
                                         cache=False)
            got = [result.histogram.counts
                   for result in session.run_specs(specs)]
            if baseline is None:
                baseline = got
            else:
                assert got == baseline, (jobs, executor)

    def test_scenario_verdicts_identical_across_pools(self):
        specs = [ScenarioSpec(scenario=get_scenario(name),
                              chip=CHIPS["Titan"], iterations=1, seed=0,
                              intensity=1.0)
                 for name in ("deque-mp", "ticket", "isolation+fenced")]
        baseline = None
        for jobs, executor in PARALLEL_CONFIGS:
            session = exhaustive_session(jobs=jobs, executor=executor,
                                         cache=False)
            verdicts = []
            for spec, result in zip(specs, session.run_specs(specs)):
                verdict = exhaustive_verdict(result.histogram,
                                             spec.test.condition)
                verdict["losing_states"] = sorted(
                    map(repr, verdict.pop("losing_states")))
                verdicts.append(verdict)
            if baseline is None:
                baseline = verdicts
            else:
                assert verdicts == baseline, (jobs, executor)

    def test_wide_cell_parallel_matches_serial_exploration(self):
        # The cell the rework exists for: mp-pad4 on Titan, previously
        # over the 2M-transition budget, now 12 balanced branches.
        test = exhaust_corpus_test("litmus", "mp-pad4")
        chip = CHIPS["Titan"]
        serial = Explorer(test, chip).run()
        spec = RunSpec.make(test, chip, iterations=1, seed=0)
        session = exhaustive_session(jobs=4, executor="process",
                                     cache=False)
        verdict = exhaustive_verdict(session.run(spec).histogram,
                                     test.condition)
        assert verdict["transitions"] == serial.transitions
        assert verdict["states"] == len(serial.reachable)
        assert verdict["losses"] == serial.losses
        assert verdict["bounded"] == serial.bounded


class TestBranchPartition:
    @pytest.mark.parametrize("cell", (("litmus", "iriw", "Titan"),
                                      ("litmus", "mp-pad4", "Titan"),
                                      ("scenario", "deque-mp", "Titan")))
    def test_merged_branches_equal_full_run(self, cell):
        kind, name, chip_short = cell
        test = exhaust_corpus_test(kind, name)
        chip = CHIPS[chip_short]
        explorer = Explorer(test, chip)
        full = explorer.run()
        plan = explorer.root_plan()
        reachable = set()
        executions = transitions = losses = 0
        bounded = False
        for index in range(len(plan)):
            branch = explorer.run_branch(index)
            reachable |= branch.reachable
            executions += branch.executions
            transitions += branch.transitions
            losses += branch.losses
            bounded = bounded or branch.bounded
        assert frozenset(reachable) == full.reachable
        assert executions == full.executions
        assert transitions == full.transitions
        assert losses == full.losses
        assert bounded == full.bounded

    def test_backend_shards_mirror_the_root_plan(self):
        test = exhaust_corpus_test("litmus", "mp-pad4")
        chip = CHIPS["Titan"]
        spec = RunSpec.make(test, chip, iterations=1, seed=0)
        backend = ExhaustiveBackend()
        shards = backend.shards(spec, shard_size=0)
        assert len(shards) == len(Explorer(test, chip).root_plan())
        assert all(shard.iterations == 0 for shard in shards)
        # Merging the per-shard encodings in any order reproduces the
        # backend's own (serial) histogram.
        merged = Histogram.merge(backend.run_shard(spec, shard)
                                 for shard in reversed(shards))
        assert merged.counts == backend.run(spec).counts

    def test_wide_cells_balance_at_four_workers(self):
        # The deterministic load-balance bound of the branch partition
        # — the machine-independent form of the "near-linear scaling on
        # the widest cells" acceptance line.
        test = exhaust_corpus_test("litmus", "mp-pad4")
        chip = CHIPS["Titan"]
        explorer = Explorer(test, chip)
        work = [explorer.run_branch(index).transitions
                for index in range(len(explorer.root_plan()))]
        assert balance_bound(work, 4) >= 2.5
