"""Tests for the Sorensen operational model (Sec. 6) and the CLI."""

import pytest

from repro.cli import main
from repro.litmus import library
from repro.model.operational import (SorensenOperationalModel,
                                     unsoundness_witness)
from repro.sim import chip


class TestSorensenModel:
    def test_forbids_lb_with_cta_fences(self):
        model = SorensenOperationalModel(chip("Titan"))
        assert not model.allows_condition(library.build("lb+membar.ctas"))

    def test_scope_blind_machine_never_witnesses_it(self):
        model = SorensenOperationalModel(chip("Titan"))
        test = library.build("lb+membar.ctas")
        assert not model.observes_condition(test, runs=1500, seed=0)

    def test_allows_plain_lb(self):
        model = SorensenOperationalModel(chip("Titan"))
        assert model.allows_condition(library.build("lb"))
        assert model.observes_condition(library.build("lb"), runs=1500, seed=0)

    def test_unsoundness_witness_on_titan(self):
        """The paper's refutation: forbidden by the model, observed on the
        chip (586/100k on Titan; 19/100k on GTX 660)."""
        forbids, observed = unsoundness_witness(chip("Titan"), runs=4000,
                                                seed=2)
        assert forbids
        assert observed > 0

    def test_sampled_outcomes_subset_of_axiomatic(self):
        model = SorensenOperationalModel(chip("Titan"))
        test = library.build("lb")
        from repro.model.enumerate import (allowed_final_states,
                                           enumerate_executions)
        allowed = allowed_final_states(enumerate_executions(test),
                                       model=model._axiomatic)
        assert model.sample_outcomes(test, runs=400, seed=1) <= allowed

    def test_unsoundness_witness_on_gtx660(self):
        """The other refutation chip of Sec. 6 — a far rarer observation
        than Titan's (19/100k vs 586/100k), so the sampling budget is
        bigger."""
        forbids, observed = unsoundness_witness(chip("GTX6"), runs=20000,
                                                seed=2)
        assert forbids
        assert observed > 0

    def test_no_witness_on_the_in_order_chip(self):
        """GTX280 reorders nothing, so the model stays forbidding and
        the hardware never observes the outcome: no refutation there."""
        forbids, observed = unsoundness_witness(chip("GTX280"), runs=4000,
                                                seed=2)
        assert forbids
        assert observed == 0

    def test_sample_outcomes_are_seed_deterministic(self):
        model = SorensenOperationalModel(chip("Titan"))
        test = library.build("lb")
        first = model.sample_outcomes(test, runs=300, seed=4)
        second = model.sample_outcomes(test, runs=300, seed=4)
        assert first == second

    def test_exhaustive_explorer_confirms_the_refutation(self):
        """Sec. 6 closed loop: the outcome the scope-blind model forbids
        is exhaustively *reachable* on the chip semantics, with a
        concrete witness trace — the refutation is a proof, not a
        sampling artefact."""
        from repro.exhaustive import explore_test

        test = library.build("lb+membar.ctas")
        model = SorensenOperationalModel(chip("Titan"))
        assert not model.allows_condition(test)
        result = explore_test(test, chip("Titan"))
        assert result.losses > 0
        assert result.witness is not None
        assert test.condition.holds(result.witness.state)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "coRR" in out and "Titan" in out and "ptx" in out

    def test_run_library_test(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "200")
        assert main(["run", "coRR", "--chip", "Titan"]) == 0
        out = capsys.readouterr().out
        assert "Histogram" in out and "coRR on Titan" in out

    def test_model_verdict(self, capsys):
        assert main(["model", "coRR"]) == 0
        out = capsys.readouterr().out
        assert "Allowed" in out

    def test_model_forbidden(self, capsys):
        assert main(["model", "mp+membar.gls", "--model", "ptx"]) == 0
        assert "Forbidden" in capsys.readouterr().out

    def test_run_litmus_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "100")
        from repro.litmus import write_litmus
        path = tmp_path / "sb.litmus"
        path.write_text(write_litmus(library.build("sb")))
        assert main(["run", str(path), "--chip", "GTX7"]) == 0

    def test_unknown_test_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "not-a-test"])

    def test_run_incantations_none_reproduces_bare_setup(self, capsys,
                                                         monkeypatch):
        """The bare Sec. 4.2 configuration: no incantations, hence no
        weak observations on Nvidia chips."""
        monkeypatch.setenv("REPRO_ITERS", "400")
        assert main(["run", "mp", "--chip", "Titan",
                     "--incantations", "none"]) == 0
        out = capsys.readouterr().out
        assert "[none]" in out
        assert "0/400 weak" in out

    def test_run_incantations_flags(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "200")
        assert main(["run", "mp", "--chip", "Titan",
                     "--incantations", "stress+sync+random"]) == 0
        assert "[stress+sync+random]" in capsys.readouterr().out

    def test_run_incantations_bad_value_exits(self, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "100")
        with pytest.raises(SystemExit):
            main(["run", "mp", "--incantations", "banana"])

    def test_run_with_jobs_and_backend_flags(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "200")
        assert main(["run", "mp", "--chip", "Titan", "--jobs", "2"]) == 0
        assert "via sim" in capsys.readouterr().out

    def test_campaign_subcommand(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ITERS", "200")
        argv = ["campaign", "mp", "lb", "--chips", "Titan", "HD7970",
                "--jobs", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "obs/100k" in out and "Titan" in out and "HD7970" in out
        assert "4 cells" in out

        # Warm disk cache: the rerun performs zero new simulations.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 simulated iterations" in out

    def test_campaign_model_backend(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ITERS", "50")
        assert main(["campaign", "mp", "--chips", "Titan",
                     "--backend", "model"]) == 0
        assert "obs/100k" in capsys.readouterr().out

    def test_generate(self, capsys):
        assert main(["generate", "--length", "3", "--max", "5"]) == 0
        out = capsys.readouterr().out
        assert "GPU_PTX" in out

    def test_verify_fenced_scenario(self, capsys):
        assert main(["verify", "-s", "isolation", "--fenced", "on",
                     "--chips", "Titan"]) == 0
        out = capsys.readouterr().out
        assert "verified: 0 losses over all executions" in out

    def test_verify_unfenced_scenario_reports_the_loss(self, capsys):
        """An unfenced cell losing is the expected result, not a
        failure: exit 0, but with a concrete losing trace."""
        assert main(["verify", "-s", "deque-mp", "--fenced", "off",
                     "--chips", "Titan"]) == 0
        out = capsys.readouterr().out
        assert "LOST" in out and "losing execution" in out

    def test_app_exhaustive_mode(self, capsys):
        assert main(["app", "-s", "deque-mp", "--chips", "Titan",
                     "--mode", "exhaustive"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive verification" in out and "LOST" in out

    def test_unknown_backend_mentions_exhaustive(self):
        from repro.api import make_backend
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="exhaustive"):
            make_backend("banana")
