"""Differential tests locking the exhaustive explorer to the other oracles.

Three independent implementations answer "which final states can this
cell reach?": the axiomatic model (candidate-graph enumeration), the
operational simulator (sampling), and the exhaustive explorer (stateless
DPOR search).  Any mismatch is a real bug in exactly one of them:

* exhaustive reachable sets must **equal** the PTX model's allowed sets
  on the small library corpus for the weak Nvidia chips (whose
  relaxation sets realise every model-allowed behaviour), and stay a
  **subset** on every chip (a chip without a relaxation reaches less,
  never more);
* every state observed by a 50k-run batch-engine campaign must be
  exhaustive-reachable (sampling can only see what enumeration proves
  possible);
* sampled simulator outcomes on litmus cells are exhaustive-reachable
  for any engine and intensity (the structural-intent monotonicity
  contract).
"""

import random

import pytest

from repro.apps.scenario import ScenarioSpec, get_scenario
from repro.exhaustive import explore_test
from repro.harness.histogram import Histogram
from repro.litmus import library
from repro.model.models import load_model
from repro.sim import CHIPS
from repro.sim.batch import have_numpy
from repro.sim.compile import compile_cell
from repro.sim.engine import run_batch

#: The library corpus both enumeration oracles cover exactly.
LIBRARY_CORPUS = ("mp", "sb", "lb", "coRR", "mp+membar.gls",
                  "lb+membar.gls", "lb+membar.ctas", "mp-L1", "coRR-L2-L1")

#: Weak Nvidia chips whose relaxation sets realise every PTX-allowed
#: behaviour of the corpus (verified cell by cell; GTX280 is the
#: in-order control and HD7970 lacks the coRR/ctas relaxations, so both
#: reach strict subsets on some cells).
COMPLETE_CHIPS = ("TesC", "Titan", "GTX6")

#: Every chip the subset direction must hold on.
ALL_CHIPS = sorted(CHIPS)


def ptx_allowed(test):
    return set(load_model("ptx").allowed_outcomes(test, fuel=128))


class TestExhaustiveVsModel:
    @pytest.mark.parametrize("chip_short", COMPLETE_CHIPS)
    @pytest.mark.parametrize("name", LIBRARY_CORPUS)
    def test_reachable_equals_allowed_on_weak_chips(self, name, chip_short):
        test = library.build(name)
        result = explore_test(test, CHIPS[chip_short])
        assert result.complete, "corpus cells have no loops to bound"
        assert result.reachable == ptx_allowed(test)

    @pytest.mark.parametrize("chip_short", ALL_CHIPS)
    def test_reachable_subset_of_allowed_everywhere(self, chip_short):
        for name in ("mp", "lb+membar.ctas", "coRR"):
            test = library.build(name)
            result = explore_test(test, CHIPS[chip_short])
            assert result.reachable <= ptx_allowed(test), \
                "%s on %s reached a model-forbidden state" % (name,
                                                              chip_short)

    def test_in_order_control_chip_reaches_strict_subset(self):
        """GTX280 (no relaxations) must miss the weak mp outcome the
        model allows — equality there would mean the explorer invents
        behaviours the chip profile forbids."""
        test = library.build("mp")
        result = explore_test(test, CHIPS["GTX280"])
        assert result.reachable < ptx_allowed(test)
        assert result.losses == 0

    @pytest.mark.parametrize("chip_short", ("Titan", "TesC"))
    def test_condition_verdict_matches_model(self, chip_short):
        """The exists-condition verdict agrees cell by cell."""
        ptx = load_model("ptx")
        for name in LIBRARY_CORPUS:
            test = library.build(name)
            result = explore_test(test, CHIPS[chip_short])
            assert (result.losses > 0) == ptx.allows_condition(test)


class TestExhaustiveVsSimulation:
    @pytest.mark.parametrize("name", ("mp", "sb", "coRR"))
    @pytest.mark.parametrize("chip_short", ("Titan", "GTX280"))
    def test_sampled_outcomes_are_reachable(self, name, chip_short):
        """2k sampled fast-engine runs at stress intensity never leave
        the exhaustive reachable set (structural-intent monotonicity:
        sampling draws a subset of the explorer's choice points)."""
        test = library.build(name)
        chip = CHIPS[chip_short]
        reachable = explore_test(test, chip).reachable
        cell = compile_cell(test, chip, intensity=100.0)
        histogram = run_batch(cell, 2000, random.Random(7), Histogram())
        assert set(histogram.counts) <= reachable

    @pytest.mark.skipif(not have_numpy(), reason="needs the [batch] extra")
    @pytest.mark.parametrize("scenario_name",
                             ("deque-mp", "isolation", "ticket+fenced"))
    def test_50k_batch_campaign_states_are_reachable(self, scenario_name):
        """Every state a 50k-launch batch campaign observes on Titan is
        exhaustive-reachable after scenario projection."""
        from repro.apps.backend import AppBackend

        scenario = get_scenario(scenario_name)
        chip = CHIPS["Titan"]
        result = explore_test(scenario.test(), chip)
        projected = {scenario.project(state) for state in result.reachable}
        spec = ScenarioSpec(scenario=scenario, chip=chip, iterations=50000,
                            seed=11, intensity=100.0, engine="batch")
        histogram = AppBackend().run(spec)
        assert set(histogram.counts) <= projected
        # The campaign's loss verdict can never contradict the
        # verifier: losses sampled => losses proven reachable.
        losses = histogram.observations(scenario.loss)
        if losses:
            assert result.losses > 0

    def test_verified_scenarios_never_lose_in_campaigns(self):
        """A verified fenced cell (zero losses over *all* executions)
        must show zero sampled losses at any budget."""
        scenario = get_scenario("deque-mp+fenced")
        chip = CHIPS["Titan"]
        result = explore_test(scenario.test(), chip)
        assert result.verified
        cell = compile_cell(scenario.test(), chip, intensity=100.0)
        histogram = run_batch(cell, 3000, random.Random(3), Histogram())
        assert histogram.observations(scenario.loss) == 0
