"""Tests for the compilation tooling: Table 5, SASS, optcheck, deps, AMD."""

import pytest

from repro.compiler import (ARCHITECTURES, AddTo, AtomicCas, AtomicExchange,
                            Cond, FENCE_REMOVED, If, Kernel, LOAD_CAS_REORDERED,
                            LOADS_COMBINED, Load, Store, TABLE5, Threadfence,
                            While, assemble, check_sass, compile_kernel,
                            compile_opencl_thread, cuobjdump, decode,
                            dependent_load_pair, effective_litmus,
                            embed_specification, encode, optcheck,
                            sass_address_dependency_intact)
from repro.errors import CompileError, OptcheckViolation
from repro.litmus import library
from repro.ptx import (AtomCas, Bra, Guard, Ld, Membar, Reg, Setp, St)
from repro.ptx import Addr, Loc, Scope
from repro.ptx.program import ThreadProgram


class TestTable5Lowering:
    def test_mapping_documented(self):
        assert TABLE5["atomicCAS"] == "atom.cas"
        assert TABLE5["__threadfence"] == "membar.gl"
        assert TABLE5["__threadfence_block"] == "membar.cta"

    def test_store_load_global(self):
        program = compile_kernel(Kernel([Store("x", 1), Load("v", "x")]), 0)
        assert isinstance(program.instructions[0], St)
        assert str(program.instructions[0]) == "st.cg.s32 [x], 1"
        assert str(program.instructions[1]).startswith("ld.cg.s32")

    def test_volatile_accesses(self):
        program = compile_kernel(
            Kernel([Store("t", 1, volatile=True), Load("v", "t", volatile=True)]), 0)
        assert all(i.volatile for i in program.instructions)

    def test_threadfence_scopes(self):
        program = compile_kernel(
            Kernel([Threadfence(), Threadfence(block=True)]), 0)
        assert program.instructions[0] == Membar(Scope.GL)
        assert program.instructions[1] == Membar(Scope.CTA)

    def test_spin_loop_becomes_guarded_backjump(self):
        program = compile_kernel(
            Kernel([While(Cond("v", "ne", 0), body=(AtomicCas("v", "m", 0, 1),))]), 0)
        kinds = [type(i) for i in program.instructions]
        assert AtomCas in kinds and Setp in kinds and Bra in kinds
        branch = [i for i in program.instructions if isinstance(i, Bra)][0]
        assert branch.guard is not None

    def test_if_becomes_predication(self):
        program = compile_kernel(
            Kernel([Load("v", "m"),
                    If(Cond("v", "eq", 0), body=(Store("x", 1),))]), 0)
        guarded = [i for i in program.instructions
                   if isinstance(i, St) and i.guard is not None]
        assert len(guarded) == 1

    def test_atomic_exchange(self):
        program = compile_kernel(Kernel([AtomicExchange("old", "m", 0)]), 0)
        assert "atom.exch" in str(program.instructions[0])

    def test_add_register_allocation_is_stable(self):
        program = compile_kernel(
            Kernel([Load("a", "x"), AddTo("a", "a", 1), Store("x", "a")]), 0)
        load, add, store = program.instructions
        assert load.dst == add.dst == store.src

    def test_bad_condition_rejected(self):
        with pytest.raises(CompileError):
            Cond("v", "lt", 0)


class TestSassAssembler:
    def test_o0_separates_accesses_with_filler(self):
        test = library.build("coRR")
        sass = assemble(test.threads[1], "-O0")
        accesses = sass.memory_accesses()
        assert len(accesses) == 2
        indexes = [i for i, instr in enumerate(sass) if instr.is_memory_access]
        assert indexes[1] - indexes[0] > 1  # filler in between

    def test_o3_keeps_accesses_adjacent(self):
        test = library.build("coRR")
        sass = assemble(test.threads[1], "-O3")
        indexes = [i for i, instr in enumerate(sass) if instr.is_memory_access]
        assert indexes[1] - indexes[0] == 1

    def test_every_ptx_access_has_a_sass_access(self):
        for name in ["mp-L1", "dlb-mp", "cas-sl", "sl-future"]:
            test = library.build(name)
            for program in test.threads:
                ptx_accesses = len(program.memory_accesses())
                sass = assemble(program, "-O3")
                assert len(sass.memory_accesses()) == ptx_accesses, name

    def test_unknown_opt_level_rejected(self):
        with pytest.raises(CompileError):
            assemble(library.build("coRR").threads[0], "-O2")

    def test_cuobjdump_format(self):
        sass = assemble(library.build("coRR").threads[1], "-O3")
        dump = cuobjdump(sass)
        assert "LDG.CG" in dump and ";" in dump


class TestOptcheck:
    def test_encode_decode_round_trip(self):
        for kind in ["ld.cg", "ld.ca", "ld.volatile", "st", "atom.cas"]:
            for position in (0, 5, 63):
                assert decode(encode(kind, position)) == (kind, position)

    def test_non_magic_constant_ignored(self):
        assert decode(0x1234) is None

    def test_clean_compile_passes(self):
        for name in ["coRR", "mp-L1", "cas-sl", "dlb-lb"]:
            test = library.build(name)
            for program in test.threads:
                optcheck(program, cuda_version="6.0")

    def test_cuda55_volatile_reorder_detected(self):
        program = ThreadProgram(0, [
            Ld(Reg("r1"), Addr(Loc("x")), volatile=True),
            Ld(Reg("r2"), Addr(Loc("x")), volatile=True),
        ])
        violations = 0
        for seed in range(12):
            try:
                optcheck(program, cuda_version="5.5", seed=seed)
            except OptcheckViolation:
                violations += 1
        assert violations > 0  # the bug fires on some schedules

    def test_cuda60_never_reorders(self):
        program = ThreadProgram(0, [
            Ld(Reg("r1"), Addr(Loc("x")), volatile=True),
            Ld(Reg("r2"), Addr(Loc("x")), volatile=True),
        ])
        for seed in range(12):
            optcheck(program, cuda_version="6.0", seed=seed)

    def test_missing_spec_rejected(self):
        sass = assemble(library.build("coRR").threads[1], "-O3")
        with pytest.raises(OptcheckViolation):
            check_sass(cuobjdump(sass))  # no spec embedded

    def test_spec_embedding_appends_xors(self):
        program = library.build("coRR").threads[1]
        instrumented = embed_specification(program)
        assert len(instrumented) == len(program) + 2


class TestDependencyManufacturing:
    def test_xor_scheme_optimised_away(self):
        instructions, _ = dependent_load_pair("x", "y", scheme="xor")
        sass = assemble(ThreadProgram(0, instructions), "-O3")
        assert not sass_address_dependency_intact(sass)

    def test_and_scheme_survives(self):
        instructions, _ = dependent_load_pair("x", "y", scheme="and")
        sass = assemble(ThreadProgram(0, instructions), "-O3")
        assert sass_address_dependency_intact(sass)

    def test_both_schemes_survive_at_o0(self):
        for scheme in ("xor", "and"):
            instructions, _ = dependent_load_pair("x", "y", scheme=scheme)
            sass = assemble(ThreadProgram(0, instructions), "-O0")
            assert sass_address_dependency_intact(sass), scheme


class TestAmdCompilers:
    def test_architectures(self):
        assert ARCHITECTURES["TeraScale 2"] == "Evergreen"
        assert ARCHITECTURES["GCN 1.0"] == "Southern Islands"

    def test_gcn_removes_fence_between_loads(self):
        test = library.mp(fence0=Scope.GL, fence1=Scope.GL)
        compiled = compile_opencl_thread(test.threads[1], "GCN 1.0")
        assert FENCE_REMOVED in compiled.transformations
        assert not any(isinstance(i, Membar) for i in compiled.instructions)

    def test_gcn_keeps_fence_between_stores(self):
        test = library.mp(fence0=Scope.GL, fence1=Scope.GL)
        compiled = compile_opencl_thread(test.threads[0], "GCN 1.0")
        assert FENCE_REMOVED not in compiled.transformations

    def test_terascale_reorders_load_before_cas(self):
        test = library.build("dlb-lb")
        compiled = compile_opencl_thread(test.threads[1], "TeraScale 2")
        assert LOAD_CAS_REORDERED in compiled.transformations
        assert compiled.miscompiled

    def test_repeated_loads_combined_unless_volatile(self):
        corr = library.build("coRR")
        compiled = compile_opencl_thread(corr.threads[1], "GCN 1.0")
        assert LOADS_COMBINED in compiled.transformations
        volatile_corr = ThreadProgram(1, [
            Ld(Reg("r1"), Addr(Loc("x")), volatile=True),
            Ld(Reg("r2"), Addr(Loc("x")), volatile=True),
        ])
        clean = compile_opencl_thread(volatile_corr, "GCN 1.0")
        assert LOADS_COMBINED not in clean.transformations

    def test_effective_litmus_marks_dlb_lb_invalid_on_terascale(self):
        _, transformations, valid = effective_litmus(
            library.build("dlb-lb"), "TeraScale 2")
        assert not valid
        assert LOAD_CAS_REORDERED in transformations

    def test_effective_fenced_mp_still_weak_on_gcn(self):
        from repro.model.models import ptx_model
        fenced = library.mp(fence0=Scope.GL, fence1=Scope.GL)
        effective, _, valid = effective_litmus(fenced, "GCN 1.0")
        assert valid
        assert ptx_model().allows_condition(effective)

    def test_unknown_architecture_rejected(self):
        with pytest.raises(CompileError):
            compile_opencl_thread(library.build("mp").threads[0], "RDNA3")

    def test_isa_text_mnemonics(self):
        test = library.build("mp")
        evergreen = compile_opencl_thread(test.threads[0], "TeraScale 2")
        southern = compile_opencl_thread(test.threads[0], "GCN 1.0")
        assert "MEM_RAT_CACHELESS" in evergreen.isa_text
        assert "BUFFER_STORE_DWORD" in southern.isa_text
