"""Property tests for the exhaustive explorer and its backend.

The contracts the tentpole stands on:

* **Pruning soundness** — DPOR explores a subset of the naive
  interleaving tree (never more transitions) with the *identical*
  reachable-state set, across a randomized diy corpus and both a weak
  and an in-order chip;
* **Determinism** — verdicts are a pure function of the spec:
  identical across ``--jobs``, executor kinds and repeat runs, and
  cache round-trips reproduce them bit for bit;
* the meta-histogram encoding round-trips, cache signatures separate
  exactly what exploration depends on (structural intent, loop bound,
  strategy — not the numeric intensity), the loop bound flags bounded
  verdicts, the transition budget fails loudly, and witnesses index
  into PR 4's relation machinery.
"""

import pytest

from repro.apps.scenario import ScenarioSpec, get_scenario
from repro.diy import (default_pool, fences_from_names, generate_tests,
                       scopes_from_names)
from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.exhaustive import (DEFAULT_LOOP_BOUND, ExhaustiveBackend,
                              VERIFIED_TEXT, encode_exhaustive_histogram,
                              execution_graph, exhaustive_session,
                              exhaustive_verdict, explore_test,
                              split_exhaustive_histogram, verify_scenarios)
from repro.errors import ExplorationLimit
from repro.harness.histogram import Histogram
from repro.litmus import library
from repro.sim import CHIPS


def diy_corpus(max_tests=14):
    """A small deterministic diy corpus (seeded pool, fixed order)."""
    pool = default_pool(scopes=scopes_from_names(["dev", "cta"]),
                        fences=fences_from_names(["cta", "gl"]))
    return generate_tests(pool, max_length=4, max_tests=max_tests)


class TestPruningSoundness:
    @pytest.mark.parametrize("chip_short", ("Titan", "GTX280"))
    def test_dpor_subset_of_naive_with_identical_states(self, chip_short):
        chip = CHIPS[chip_short]
        for test in diy_corpus():
            dpor = explore_test(test, chip, strategy="dpor")
            naive = explore_test(test, chip, strategy="naive")
            assert dpor.transitions <= naive.transitions, test.name
            assert dpor.reachable == naive.reachable, test.name
            assert dpor.losses == 0 or naive.losses > 0, test.name

    @pytest.mark.parametrize("scenario_name",
                             ("deque-mp", "deque-mp+fenced", "isolation",
                              "ticket+fenced"))
    def test_scenario_strategies_agree(self, scenario_name):
        test = get_scenario(scenario_name).test()
        chip = CHIPS["Titan"]
        dpor = explore_test(test, chip, strategy="dpor")
        naive = explore_test(test, chip, strategy="naive")
        assert dpor.reachable == naive.reachable
        assert dpor.transitions <= naive.transitions
        assert (dpor.losses == 0) == (naive.losses == 0)
        # State-hash loop closure can complete a spin loop DPOR-side
        # that naive (whose interleavings break the same-thread spin
        # suffix the closure keys on) still truncates at the bound —
        # but never the other way around: naive replays every path
        # DPOR explores, so a bounded DPOR run implies a bounded naive
        # run.
        assert naive.bounded or not dpor.bounded

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            explore_test(library.build("mp"), CHIPS["Titan"],
                         strategy="bogus")


class TestDeterminism:
    def _specs(self):
        return [ScenarioSpec(scenario=get_scenario(name),
                             chip=CHIPS["Titan"], iterations=1, seed=seed,
                             intensity=intensity)
                for name, seed, intensity in (("deque-mp", 0, 1.0),
                                              ("isolation+fenced", 5, 100.0))]

    def test_identical_across_jobs_and_executors(self):
        baseline = [result.histogram.counts
                    for result in exhaustive_session(cache=False)
                    .run_specs(self._specs())]
        for jobs, executor in ((2, "thread"), (2, "process")):
            session = exhaustive_session(jobs=jobs, executor=executor,
                                         cache=False)
            got = [result.histogram.counts
                   for result in session.run_specs(self._specs())]
            assert got == baseline, (jobs, executor)

    def test_cache_round_trip(self, tmp_path):
        specs = self._specs()
        first = exhaustive_session(cache_dir=str(tmp_path))
        cold = [r.histogram.counts for r in first.run_specs(specs)]
        second = exhaustive_session(cache_dir=str(tmp_path))
        warm = [r.histogram.counts for r in second.run_specs(specs)]
        assert warm == cold
        assert second.stats.cache_hits == len(specs)

    def test_repeat_exploration_is_bit_identical(self):
        test = get_scenario("deque-mp").test()
        first = explore_test(test, CHIPS["Titan"])
        second = explore_test(test, CHIPS["Titan"])
        assert first.reachable == second.reachable
        assert first.transitions == second.transitions
        assert first.witness == second.witness


class TestBackendEncoding:
    def test_histogram_round_trip(self):
        result = explore_test(library.build("mp"), CHIPS["Titan"])
        histogram = encode_exhaustive_histogram(result)
        reachable, meta = split_exhaustive_histogram(histogram)
        assert set(reachable.counts) == set(result.reachable)
        verdict = exhaustive_verdict(histogram,
                                     library.build("mp").condition)
        assert verdict["executions"] == result.executions
        assert verdict["transitions"] == result.transitions
        assert verdict["losses"] == result.losses
        assert verdict["bounded"] == result.bounded
        assert verdict["verified"] == result.verified
        assert len(verdict["losing_states"]) > 0

    def test_split_rejects_plain_histograms(self):
        with pytest.raises(ReproError):
            split_exhaustive_histogram(Histogram())

    def test_cache_signature_is_intensity_structural(self):
        backend = ExhaustiveBackend()
        spec = ScenarioSpec(scenario=get_scenario("deque-mp"),
                            chip=CHIPS["Titan"], iterations=1, seed=0,
                            intensity=1.0)
        stress = ScenarioSpec(scenario=get_scenario("deque-mp"),
                              chip=CHIPS["Titan"], iterations=500, seed=9,
                              intensity=100.0)
        zero = ScenarioSpec(scenario=get_scenario("deque-mp"),
                            chip=CHIPS["Titan"], iterations=1, seed=0,
                            intensity=0.0)
        assert backend.cache_signature(spec) == backend.cache_signature(
            stress)
        assert backend.cache_signature(spec) != backend.cache_signature(zero)
        assert backend.cache_signature(spec) != ExhaustiveBackend(
            loop_bound=DEFAULT_LOOP_BOUND + 1).cache_signature(spec)
        assert backend.cache_signature(spec) != ExhaustiveBackend(
            strategy="naive").cache_signature(spec)

    def test_make_backend_resolves_exhaustive(self):
        from repro.api import make_backend
        assert make_backend("exhaustive").name == "exhaustive"
        with pytest.raises(ReproError, match="exhaustive"):
            make_backend("bogus")


class TestBoundsAndWitnesses:
    def test_loop_closure_completes_spin_loops(self):
        # Before state-hash loop closure the fenced ticket lock's spin
        # always hit the retry bound ("bounded" verdict); now revisited
        # spin states close the branch and the DPOR exploration is
        # complete — and stays complete at deeper bounds.
        test = get_scenario("ticket+fenced").test()
        result = explore_test(test, CHIPS["Titan"])
        assert result.complete and not result.bounded
        assert result.verified
        deeper = explore_test(test, CHIPS["Titan"], loop_bound=5)
        assert deeper.complete and deeper.verified
        assert deeper.reachable == result.reachable

    def test_loop_bound_flags_bounded_verdicts(self):
        # Naive enumeration interleaves the spinner with the lock
        # holder, breaking the consecutive same-thread suffix the
        # closure keys on — its truncations still flag the verdict.
        test = get_scenario("ticket+fenced").test()
        result = explore_test(test, CHIPS["Titan"], strategy="naive")
        assert result.bounded and not result.complete
        assert result.verified

    def test_invalid_loop_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            explore_test(library.build("mp"), CHIPS["Titan"], loop_bound=0)

    def test_transition_budget_fails_loudly(self):
        with pytest.raises(ExplorationLimit) as excinfo:
            explore_test(library.build("mp"), CHIPS["Titan"],
                         max_transitions=5)
        message = str(excinfo.value)
        # The abort names the cell and chip, reports how far it got and
        # points at both remedies.
        assert "mp" in message and "Titan" in message
        assert "--max-transitions" in message
        assert "--loop-bound" in message
        assert issubclass(ExplorationLimit, SimulationError)

    def test_witness_reaches_a_losing_state(self):
        scenario = get_scenario("deque-mp")
        result = explore_test(scenario.test(), CHIPS["Titan"])
        assert result.losses > 0
        witness = result.witness
        assert witness is not None and len(witness.events) > 0
        assert scenario.test().condition.holds(witness.state)
        assert any("store" in line or "load" in line
                   for line in witness.lines())

    def test_execution_graph_builds_relation_rows(self):
        result = explore_test(get_scenario("deque-mp").test(),
                              CHIPS["Titan"])
        index, relations = execution_graph(result.witness)
        po, com, hb = relations["po"], relations["com"], relations["hb"]
        assert set(po.pairs()) <= set(hb.pairs())
        assert set(com.pairs()) <= set(hb.pairs())
        # po is same-thread order along the trace, so it is transitive
        # already; hb adds the communication edges.
        assert len(set(hb.pairs())) >= len(set(po.pairs()))


class TestVerifyReport:
    def test_fenced_rows_use_the_verbatim_sentence(self):
        report = verify_scenarios(["deque-mp+fenced"], ["Titan"])
        (row,) = report.rows
        assert row.verified and row.fenced
        assert VERIFIED_TEXT == "verified: 0 losses over all executions"
        assert VERIFIED_TEXT in row.verdict()
        assert report.ok

    def test_unfenced_rows_carry_a_witness(self):
        report = verify_scenarios(["deque-mp"], ["Titan"])
        (row,) = report.rows
        assert not row.verified and not row.fenced
        assert row.witness is not None
        assert report.ok, "unfenced losses are expected, not failures"
        assert any("losing execution" in line for line in report.lines())

    def test_fenced_loss_would_fail_the_report(self):
        from repro.exhaustive.verify import VerifyReport, VerifyRow
        row = VerifyRow(scenario="x+fenced", chip="Titan", fenced=True,
                        states=1, executions=2, transitions=3, losses=1,
                        bounded=False, witness=None)
        report = VerifyReport(rows=(row,), loop_bound=3)
        assert not report.ok
        assert any("UNEXPECTED" in line for line in report.lines())
