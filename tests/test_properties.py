"""Cross-layer property tests (hypothesis) on randomly generated tests.

These pin down the invariants that hold the reproduction together:

* candidate executions are internally consistent (rf matches values, co
  is a per-location total order, final memory is the co-last write);
* the model hierarchy is monotone (SC ⊆ TSO ⊆ RMO ⊆ PTX);
* the simulator only ever produces final states that exist among the
  candidate executions — and, for ``.cg`` programs, states the PTX model
  allows (the Sec. 5.4 soundness invariant);
* the litmus text format round-trips arbitrary generated tests.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.diy import default_pool
from repro.hierarchy import ScopeTree
from repro.litmus import LitmusTest, parse_condition, parse_litmus, write_litmus
from repro.litmus.condition import RegEq
from repro.model.enumerate import allowed_final_states, enumerate_executions
from repro.model.models import ptx_model, rmo_model, sc_model, tso_model
from repro.ptx import Addr, CacheOp, Imm, Ld, Loc, Membar, Reg, Scope, St
from repro.ptx.program import ThreadProgram
from repro.sim import chip, run_iterations

PTX = ptx_model()
SC = sc_model()
TSO = tso_model()
RMO = rmo_model()

_LOCATIONS = ["x", "y"]


@st.composite
def small_litmus_tests(draw):
    """Random straight-line two-thread tests over two locations.

    Instructions are loads/stores/fences; every load's register is
    observed by the condition, making outcomes fully discriminated.
    """
    threads = []
    condition_atoms = []
    for tid in range(2):
        n = draw(st.integers(1, 3))
        instructions = []
        reg_counter = 0
        for _ in range(n):
            kind = draw(st.sampled_from(["ld", "st", "membar"]))
            loc = draw(st.sampled_from(_LOCATIONS))
            if kind == "ld":
                reg = "r%d" % reg_counter
                reg_counter += 1
                instructions.append(Ld(Reg(reg), Addr(Loc(loc)), cop=CacheOp.CG))
                condition_atoms.append(RegEq(tid, reg, draw(st.integers(0, 2))))
            elif kind == "st":
                value = draw(st.integers(1, 2))
                instructions.append(St(Addr(Loc(loc)), Imm(value), cop=CacheOp.CG))
            else:
                instructions.append(Membar(draw(st.sampled_from(list(Scope)))))
        if not any(i.is_memory_access for i in instructions):
            instructions.append(Ld(Reg("r9"), Addr(Loc("x")), cop=CacheOp.CG))
        threads.append(ThreadProgram(tid=tid, instructions=tuple(instructions)))
    placement = draw(st.sampled_from(["intra-cta", "inter-cta"]))
    expr = condition_atoms[0] if condition_atoms else RegEq(0, "r9", 0)
    from repro.litmus.condition import And, Condition
    for atom in condition_atoms[1:2]:
        expr = And(expr, atom)
    return LitmusTest(
        name="random", threads=tuple(threads),
        scope_tree=ScopeTree.for_threads(["T0", "T1"], placement),
        condition=Condition("exists", expr))


class TestExecutionConsistency:
    @settings(max_examples=40, deadline=None)
    @given(small_litmus_tests())
    def test_rf_values_consistent(self, test):
        for execution in enumerate_executions(test):
            for write, read in execution.rf:
                assert write.loc == read.loc
                assert write.value == read.value

    @settings(max_examples=40, deadline=None)
    @given(small_litmus_tests())
    def test_every_read_has_exactly_one_source(self, test):
        for execution in enumerate_executions(test):
            for read in execution.reads:
                sources = execution.rf.predecessors(read)
                assert len(sources) == 1

    @settings(max_examples=40, deadline=None)
    @given(small_litmus_tests())
    def test_co_total_per_location_init_first(self, test):
        for execution in enumerate_executions(test):
            by_loc = {}
            for write in execution.writes:
                by_loc.setdefault(write.loc, []).append(write)
            for loc, writes in by_loc.items():
                for a in writes:
                    for b in writes:
                        if a is not b:
                            assert ((a, b) in execution.co) != \
                                   ((b, a) in execution.co)
                inits = [w for w in writes if w.is_init]
                assert len(inits) == 1
                for other in writes:
                    if other is not inits[0]:
                        assert (inits[0], other) in execution.co

    @settings(max_examples=40, deadline=None)
    @given(small_litmus_tests())
    def test_final_memory_is_co_last(self, test):
        for execution in enumerate_executions(test):
            for loc in test.locations():
                writes = [w for w in execution.writes if w.loc == loc]
                last = max(writes,
                           key=lambda w: sum(1 for a, b in execution.co
                                             if b is w))
                assert execution.final_state.loc(loc) == last.value

    @settings(max_examples=40, deadline=None)
    @given(small_litmus_tests())
    def test_sc_executions_exist(self, test):
        # At least one candidate execution must be SC (interleaving
        # semantics always exist).
        executions = enumerate_executions(test)
        assert any(SC.allows(e) for e in executions)


class TestModelMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(small_litmus_tests())
    def test_hierarchy_per_execution(self, test):
        for execution in enumerate_executions(test):
            if SC.allows(execution):
                assert TSO.allows(execution)
            if TSO.allows(execution):
                assert RMO.allows(execution)
            if RMO.allows(execution):
                assert PTX.allows(execution)

    @settings(max_examples=30, deadline=None)
    @given(small_litmus_tests())
    def test_intra_cta_at_least_as_strong_as_inter(self, test):
        # Re-placing the same programs intra-CTA can only *forbid* more
        # (cta fences start to bite) — allowed outcomes shrink or stay.
        intra = LitmusTest(
            name="intra", threads=test.threads,
            scope_tree=ScopeTree.intra_cta([t.name for t in test.threads]),
            condition=test.condition, init_mem=dict(test.init_mem))
        inter = LitmusTest(
            name="inter", threads=test.threads,
            scope_tree=ScopeTree.inter_cta([t.name for t in test.threads]),
            condition=test.condition, init_mem=dict(test.init_mem))
        intra_allowed = allowed_final_states(enumerate_executions(intra), PTX)
        inter_allowed = allowed_final_states(enumerate_executions(inter), PTX)
        assert intra_allowed <= inter_allowed


class TestSimulatorAgainstEnumeration:
    @settings(max_examples=15, deadline=None)
    @given(small_litmus_tests(), st.integers(0, 1000))
    def test_sim_outcomes_are_candidate_outcomes(self, test, seed):
        candidates = allowed_final_states(enumerate_executions(test))
        histogram = run_iterations(test, chip("Titan"), 40, seed=seed)
        for state in histogram:
            assert state in candidates

    @settings(max_examples=15, deadline=None)
    @given(small_litmus_tests(), st.integers(0, 1000))
    def test_sim_soundness_wrt_ptx_model(self, test, seed):
        allowed = allowed_final_states(enumerate_executions(test), PTX)
        histogram = run_iterations(test, chip("Titan"), 40, seed=seed)
        for state in histogram:
            assert state in allowed

    @settings(max_examples=10, deadline=None)
    @given(small_litmus_tests())
    def test_strong_chip_is_sequentially_consistent(self, test):
        sc_states = allowed_final_states(enumerate_executions(test), SC)
        histogram = run_iterations(test, chip("GTX280"), 40, seed=1)
        for state in histogram:
            assert state in sc_states


class TestFormatRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(small_litmus_tests())
    def test_write_parse_round_trip(self, test):
        parsed = parse_litmus(write_litmus(test))
        assert parsed.condition == test.condition
        assert parsed.scope_tree.classify() == test.scope_tree.classify()
        for original, reparsed in zip(test.threads, parsed.threads):
            assert [str(i) for i in original] == [str(i) for i in reparsed]

    def test_diy_family_round_trips(self):
        from repro.diy import generate_tests
        family = generate_tests(default_pool(fences=(Scope.GL,)),
                                max_length=3, max_tests=40)
        for test in family:
            parsed = parse_litmus(write_litmus(test))
            assert parsed.condition == test.condition


class TestConditionProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 3), st.integers(0, 3))
    def test_condition_evaluation_matches_equality(self, want, have):
        from repro.litmus.condition import FinalState
        condition = parse_condition("exists (0:r0=%d)" % want)
        state = FinalState.make({(0, "r0"): have})
        assert condition.holds(state) == (want == have)
