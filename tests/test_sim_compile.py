"""Fast-path equivalence: compiled cells vs the reference interpreter.

The contract of :mod:`repro.sim.compile` is *bit-identity*: for the same
seed, a compiled cell consumes the ``Random`` stream in exactly the same
sequence as :class:`~repro.sim.machine.GpuMachine` and produces the same
final states — so every figure benchmark and the soundness campaign can
run on the fast engine without a single count changing.  These tests
enforce that contract across the litmus library, the chip stable, the
incantation combinations, diy-generated dependency corpora and arbitrary
shard decompositions, and pin down the engine switch's plumbing through
``RunSpec``/``SimBackend``/``Session``/CLI.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import RunSpec, Session, SimBackend, plan_shards
from repro.api.backends import DEFAULT_SHARD_SIZE
from repro.diy import default_pool, generate_tests
from repro.errors import ConfigurationError, ReproError
from repro.harness.histogram import Histogram
from repro.harness.incantations import Incantations, efficacy
from repro.litmus import library
from repro.sim import (CHIPS, DEFAULT_ENGINE, ENGINES, GpuMachine,
                       RESULT_CHIPS, compile_cell, resolve_engine,
                       run_batch, run_iterations)

LIBRARY_TESTS = sorted(library.PAPER_TESTS)
ALL_CHIPS = list(RESULT_CHIPS) + ["GTX280"]


def _histograms(test, chip, incantations, iterations, seed,
                shard_size=DEFAULT_SHARD_SIZE):
    """Run one cell on both engines through the real backend/shard path;
    returns (reference counts, fast counts)."""
    backend = SimBackend(shard_size=shard_size)
    out = []
    for engine in ("reference", "fast"):
        spec = RunSpec.make(test, chip, incantations=incantations,
                            iterations=iterations, seed=seed, engine=engine)
        out.append(backend.run(spec).counts)
    return out


class TestBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(name=st.sampled_from(LIBRARY_TESTS),
           chip=st.sampled_from(ALL_CHIPS),
           column=st.integers(1, 16),
           seed=st.integers(0, 2**32 - 1),
           shard_size=st.sampled_from([7, 23, DEFAULT_SHARD_SIZE]))
    def test_library_tests_bit_identical(self, name, chip, column, seed,
                                         shard_size):
        """The headline property: every library test x chip x incantation
        combo yields the same histogram on both engines, under any shard
        decomposition."""
        test = library.build(name)
        reference, fast = _histograms(
            test, chip, Incantations.from_column(column), iterations=60,
            seed=seed, shard_size=shard_size)
        assert reference == fast

    @settings(max_examples=25, deadline=None)
    @given(index=st.integers(0, 10**6),
           chip=st.sampled_from(["Titan", "TesC", "HD7970", "GTX7"]),
           seed=st.integers(0, 2**16))
    def test_diy_corpus_bit_identical(self, index, chip, seed):
        """Generated tests — including address/data/control dependency
        chains, which exercise register-relative addressing and guarded
        instructions — agree between engines."""
        corpus = self._corpus()
        test = corpus[index % len(corpus)]
        reference, fast = _histograms(test, chip, Incantations.all(),
                                      iterations=50, seed=seed)
        assert reference == fast

    _CORPUS = None

    @classmethod
    def _corpus(cls):
        if cls._CORPUS is None:
            tests = generate_tests(default_pool(), max_length=4,
                                   max_tests=None)
            # Keep every dependency-edge test plus a slice of the rest.
            dep = [t for t in tests
                   if "Addr" in t.name or "Data" in t.name
                   or "Ctrl" in t.name]
            cls._CORPUS = dep[:40] + tests[:20]
        return cls._CORPUS

    def test_rng_stream_parity(self):
        """Stronger than equal histograms: after any run the underlying
        Random streams are at the same position, so engines may be
        interleaved mid-stream."""
        test = library.build("mp-L1")
        chip = CHIPS["TesC"]
        intensity = efficacy(chip.vendor, "mp", Incantations.all())
        reference = GpuMachine(test, chip, intensity=intensity,
                               shuffle_placement=True)
        fast = compile_cell(test, chip, intensity=intensity,
                            shuffle_placement=True)
        r1, r2 = random.Random(42), random.Random(42)
        for _ in range(200):
            assert reference.run_once(r1) == fast.run_once(r2)
            assert r1.random() == r2.random()

    def test_scope_blind_bit_identical(self):
        """The Sec. 6 scope-blind mode compiles to the same outcomes."""
        test = library.build("mp-L1+membar.ctas")
        chip = CHIPS["TesC"]
        reference = GpuMachine(test, chip, scope_blind=True)
        fast = compile_cell(test, chip, scope_blind=True)
        r1, r2 = random.Random(5), random.Random(5)
        for _ in range(300):
            assert reference.run_once(r1) == fast.run_once(r2)

    def test_shared_memory_tests_bit_identical(self):
        """Shared-memory (scratchpad) locations take the non-global
        paths through the compiled memory system."""
        for name in LIBRARY_TESTS:
            test = library.build(name)
            if any(test.space_of(loc).value == "shared"
                   for loc in test.locations()):
                reference, fast = _histograms(
                    test, "Titan", Incantations.none(), iterations=40,
                    seed=3)
                assert reference == fast


class TestEngineSwitch:
    def test_default_engine_is_fast(self):
        assert DEFAULT_ENGINE == "fast"
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=10)
        assert spec.engine == "fast"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine(None) == "reference"
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=10)
        assert spec.engine == "reference"

    def test_bad_env_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp-speed")
        with pytest.raises(ConfigurationError):
            resolve_engine(None)

    def test_bad_engine_argument(self):
        with pytest.raises(ReproError):
            RunSpec.make(library.build("mp"), "Titan", iterations=10,
                         engine="warp-speed")

    def test_fingerprint_engine_independent(self):
        """Shard seeds derive from the fingerprint, so the fingerprint
        must not see the engine — that is what makes cross-engine runs
        comparable shard by shard."""
        test = library.build("mp")
        fast = RunSpec.make(test, "Titan", iterations=100, engine="fast")
        reference = fast.with_engine("reference")
        assert fast.fingerprint() == reference.fingerprint()
        assert ([shard.seed for shard in plan_shards(fast, 30)]
                == [shard.seed for shard in plan_shards(reference, 30)])

    def test_cache_signature_engine_dependent(self):
        """Cached histograms must not cross engines: a reference result
        answering a fast-engine request would mask fast-path bugs."""
        backend = SimBackend()
        test = library.build("mp")
        fast = RunSpec.make(test, "Titan", iterations=100, engine="fast")
        assert (backend.cache_signature(fast)
                != backend.cache_signature(fast.with_engine("reference")))

    def test_session_engine_default_and_override(self):
        session = Session(engine="reference", cache=False)
        test = library.build("mp")
        result = session.run(test, "Titan", iterations=20, seed=1)
        assert result.spec.engine == "reference"
        result = session.run(test, "Titan", iterations=20, seed=1,
                             engine="fast")
        assert result.spec.engine == "fast"

    def test_sessions_bit_identical_across_engines(self):
        test = library.build("cas-sl")
        histograms = {}
        for engine in ENGINES:
            session = Session(cache=False, engine=engine)
            result = session.run(test, "GTX6", iterations=400, seed=9)
            histograms[engine] = result.histogram.counts
        assert histograms["fast"] == histograms["reference"]

    def test_threaded_session_matches_serial(self):
        """jobs>1 with the thread executor shares one SimBackend across
        workers: the per-thread compile memo must keep cells isolated
        and the merged histogram bit-identical to the serial run."""
        test = library.build("mp")
        serial = Session(cache=False, jobs=1, shard_size=50)
        threaded = Session(cache=False, jobs=4, shard_size=50,
                           executor="thread")
        a = serial.run(test, "Titan", iterations=400, seed=2)
        b = threaded.run(test, "Titan", iterations=400, seed=2)
        assert a.histogram.counts == b.histogram.counts

    def test_run_iterations_engines_agree(self):
        test = library.build("sb")
        chip = CHIPS["TesC"]
        fast = run_iterations(test, chip, 300, seed=4, engine="fast")
        reference = run_iterations(test, chip, 300, seed=4,
                                   engine="reference")
        assert fast == reference

    def test_cli_engine_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "mp", "--engine", "reference"])
        assert args.engine == "reference"
        args = parser.parse_args(["soundness", "--engine", "fast"])
        assert args.engine == "fast"
        args = parser.parse_args(["campaign", "mp"])
        assert args.engine is None  # defer to REPRO_ENGINE / default


class TestRunBatch:
    def test_accumulates_into_given_histogram(self):
        test = library.build("mp")
        cell = compile_cell(test, CHIPS["Titan"])
        histogram = Histogram()
        out = run_batch(cell, 25, random.Random(0), histogram)
        assert out is histogram
        assert histogram.total == 25
        run_batch(cell, 25, random.Random(1), histogram)
        assert histogram.total == 50

    def test_fresh_histogram_when_omitted(self):
        cell = compile_cell(library.build("sb"), CHIPS["GTX7"])
        histogram = run_batch(cell, 10, random.Random(0))
        assert histogram.total == 10

    def test_machine_state_reuse_is_clean(self):
        """Back-to-back batches on one compiled cell match fresh cells:
        nothing leaks across iterations or batches."""
        test = library.build("coRR-L2-L1")
        chip = CHIPS["TesC"]
        cell = compile_cell(test, chip, intensity=1.0)
        first = run_batch(cell, 120, random.Random(8)).counts
        again = run_batch(cell, 120, random.Random(8)).counts
        fresh = run_batch(compile_cell(test, chip, intensity=1.0), 120,
                          random.Random(8)).counts
        assert first == again == fresh


class TestCompiledCellErrors:
    def test_uninstalled_address_raises(self):
        from repro.errors import SimulationError
        from repro.litmus import LitmusTest
        from repro.litmus.condition import Condition, MemEq
        from repro.ptx import Addr, Imm, Mov, Reg, St
        from repro.ptx.program import ThreadProgram

        # A register-addressed store to an address no location owns.
        program = ThreadProgram(tid=0, instructions=(
            Mov(Reg("r2"), Imm(0x1234)),
            St(Addr(Reg("r2")), Imm(1)),
        ))
        test = LitmusTest(name="bad-addr", threads=(program,),
                          condition=Condition("exists", MemEq("x", 0)),
                          init_mem={"x": 0})
        cell = compile_cell(test, CHIPS["Titan"])
        with pytest.raises(SimulationError):
            cell.run_once(random.Random(0))
