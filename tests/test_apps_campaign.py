"""Tests for the scenario campaign subsystem (apps on the Session stack).

Covers the PR's contracts:

* fast/reference engine parity for every registered scenario across the
  chip table (bit-identical projected histograms);
* sharded/serial and thread/process RNG-stream parity;
* single-shard campaign cells reproduce the ``Grid.launch_many`` stream
  (legacy driver parity);
* two-tier cache-hit correctness for the app backend, including engine
  separation;
* the paper's behaviours: every published (unfenced) scenario loses on
  the weak chips under stress, every fenced variant stays clean on the
  whole table;
* the satellite fixes: ``_as_chip`` raises ``ConfigurationError``, the
  trivial condition replaces the placeholder hack, ``repro-litmus app``
  and the scenario listing work.
"""

import pytest

from repro import cli
from repro.api import CampaignResult, make_backend
from repro.api.cache import ResultCache
from repro.apps import (AppBackend, Grid, LaunchResult, SCENARIOS,
                        ScenarioSpec, app_session, dot_product_scenario,
                        get_scenario, launch, run_app_campaign,
                        run_scenario, select_scenarios)
from repro.compiler.cuda import Kernel, Load, Store
from repro.errors import ConfigurationError, ReproError
from repro.litmus.condition import Always, trivial_condition
from repro.sim.chip import RESULT_CHIPS

STRESS = 100.0

#: The chip table the parity tests sweep: every result chip plus the
#: strong GTX 280.
CHIP_TABLE = list(RESULT_CHIPS) + ["GTX280"]

UNFENCED = sorted(name for name, s in SCENARIOS.items() if not s.fenced)
FENCED = sorted(name for name, s in SCENARIOS.items() if s.fenced)


@pytest.fixture(scope="module")
def session():
    """One shared session: the compiled-cell memo and the result cache
    persist across tests, which is exactly the production shape."""
    return app_session()


class TestRegistry:
    def test_every_scenario_has_a_fenced_twin(self):
        for name in UNFENCED:
            assert name + "+fenced" in SCENARIOS
        assert len(UNFENCED) == len(FENCED)

    def test_registry_is_validated(self):
        for scenario in SCENARIOS.values():
            scenario.validate()
            # Loss predicates read only projected locations.
            projection = set(scenario.projection) or {
                location for location, _ in scenario.init_mem}
            assert scenario.loss.locations() <= projection

    def test_expected_families_present(self):
        names = set(SCENARIOS)
        for family in ("deque-mp", "deque-lb", "deque-rt", "isolation",
                       "ticket", "dot-cbe", "dot-cbe-cta", "dot-so",
                       "dot-so-cta", "dot-heyu", "dot-heyu-cta"):
            assert family in names and family + "+fenced" in names

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_scenario("nope")
        assert "deque-mp" in str(excinfo.value)

    def test_select_scenarios(self):
        both = select_scenarios(["deque-mp"])
        assert [s.name for s in both] == ["deque-mp", "deque-mp+fenced"]
        off = select_scenarios(["deque-mp"], fenced="off")
        assert [s.name for s in off] == ["deque-mp"]
        assert len(select_scenarios(["all"])) == len(SCENARIOS)
        with pytest.raises(ConfigurationError):
            select_scenarios(["bogus"])
        with pytest.raises(ConfigurationError):
            select_scenarios(["all"], fenced="sometimes")

    def test_scenario_test_condition_is_loss_predicate(self):
        scenario = get_scenario("dot-cbe")
        assert scenario.test().condition is scenario.loss


class TestSpec:
    def test_fingerprint_excludes_engine(self):
        fast = ScenarioSpec.make("deque-mp", "Titan", runs=100, seed=1)
        ref = fast.with_engine("reference")
        assert fast.fingerprint() == ref.fingerprint()

    def test_fingerprint_covers_content(self):
        base = ScenarioSpec.make("deque-mp", "Titan", runs=100, seed=1)
        assert base.fingerprint() != ScenarioSpec.make(
            "deque-mp", "Titan", runs=100, seed=2).fingerprint()
        assert base.fingerprint() != ScenarioSpec.make(
            "deque-mp", "Titan", runs=101, seed=1).fingerprint()
        assert base.fingerprint() != ScenarioSpec.make(
            "deque-mp", "Titan", runs=100, seed=1,
            intensity=50.0).fingerprint()
        assert base.fingerprint() != ScenarioSpec.make(
            "deque-mp", "GTX6", runs=100, seed=1).fingerprint()
        assert base.fingerprint() != ScenarioSpec.make(
            "deque-mp+fenced", "Titan", runs=100, seed=1).fingerprint()

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            ScenarioSpec.make("deque-mp", "Titan", runs=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec.make("deque-mp", "NoSuchChip")

    def test_key_and_runs(self):
        spec = ScenarioSpec.make("ticket", "GTX6", runs=42)
        assert spec.key == ("ticket", "GTX6")
        assert spec.runs == spec.iterations == 42


class TestEngineParity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fast_matches_reference_across_chip_table(self, name, session):
        scenario = SCENARIOS[name]
        for chip in CHIP_TABLE:
            fast = session.run_specs([ScenarioSpec.make(
                scenario, chip, runs=20, seed=3, intensity=STRESS,
                engine="fast")])[0]
            ref = session.run_specs([ScenarioSpec.make(
                scenario, chip, runs=20, seed=3, intensity=STRESS,
                engine="reference")])[0]
            assert fast.histogram.counts == ref.histogram.counts, \
                "engine divergence: %s on %s" % (name, chip)
            assert fast.observations == ref.observations


class TestShardingParity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_sharded_equals_serial(self, name):
        serial = app_session(cache=False, shard_size=13)
        threaded = app_session(cache=False, shard_size=13, jobs=3)
        spec = ScenarioSpec.make(name, "Titan", runs=40, seed=5,
                                 intensity=STRESS)
        a = serial.run_specs([spec])[0]
        b = threaded.run_specs([spec])[0]
        assert a.histogram.counts == b.histogram.counts
        assert serial.stats.shards_executed == 4  # ceil(40 / 13)

    def test_process_pool_parity(self):
        spec = ScenarioSpec.make("deque-mp", "Titan", runs=60, seed=5,
                                 intensity=STRESS)
        serial = app_session(cache=False, shard_size=17)
        process = app_session(cache=False, shard_size=17, jobs=2,
                              executor="process")
        a = serial.run_specs([spec])[0]
        b = process.run_specs([spec])[0]
        assert a.histogram.counts == b.histogram.counts

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_single_shard_reproduces_grid_stream(self, name):
        """Legacy driver parity: one campaign shard == Grid.launch_many."""
        scenario = SCENARIOS[name]
        spec = ScenarioSpec.make(scenario, "HD7970", runs=30, seed=7,
                                 intensity=STRESS, engine="reference")
        result = app_session(cache=False).run_specs([spec])[0]
        grid = Grid(list(scenario.kernels), "HD7970",
                    dict(scenario.init_mem), placement=scenario.placement,
                    intensity=STRESS, engine="reference")
        expected = scenario.project_histogram(grid.launch_batch(30, seed=7))
        assert result.histogram.counts == expected.counts


class TestAppBackendCache:
    def test_memory_tier_hit(self):
        session = app_session()
        spec = ScenarioSpec.make("isolation", "Titan", runs=30, seed=1)
        first = session.run_specs([spec])[0]
        assert not first.cached
        second = session.run_specs([spec])[0]
        assert second.cached
        assert second.histogram.counts == first.histogram.counts
        assert session.stats.executed == 1
        assert session.stats.cache_hits == 1

    def test_disk_tier_survives_sessions(self, tmp_path):
        spec = ScenarioSpec.make("ticket", "GTX6", runs=25, seed=4)
        first = app_session(cache_dir=str(tmp_path)).run_specs([spec])[0]
        fresh = app_session(cache_dir=str(tmp_path))
        second = fresh.run_specs([spec])[0]
        assert second.cached
        assert second.histogram.counts == first.histogram.counts
        assert fresh.stats.executed == 0

    def test_engines_never_share_cache_entries(self):
        cache = ResultCache()
        fast_session = app_session(cache=cache)
        ref_session = app_session(cache=cache)
        spec = ScenarioSpec.make("deque-lb", "Titan", runs=20, seed=2)
        fast_session.run_specs([spec])
        ref_session.run_specs([spec.with_engine("reference")])
        # Same fingerprint, different engines: both executed, no cross-hit.
        assert ref_session.stats.cache_hits == 0
        assert ref_session.stats.executed == 1

    def test_in_plan_deduplication(self):
        session = app_session()
        spec = ScenarioSpec.make("deque-rt", "TesC", runs=20, seed=9)
        results = session.run_specs([spec, spec])
        assert session.stats.deduplicated == 1
        assert results[0].histogram.counts == results[1].histogram.counts

    def test_make_backend_resolves_app(self):
        assert isinstance(make_backend("app"), AppBackend)
        with pytest.raises(ReproError) as excinfo:
            make_backend("appp")
        assert "'app'" in str(excinfo.value)


class TestPaperBehaviours:
    @pytest.mark.parametrize("name", UNFENCED)
    def test_published_code_loses_on_weak_chips(self, name, session):
        result = run_scenario(name, "Titan", runs=150, seed=1,
                              intensity=STRESS, session=session)
        assert result.observations > 0, \
            "%s showed no losses on the Titan under stress" % name

    @pytest.mark.parametrize("name", FENCED)
    def test_fenced_variants_stay_clean_on_the_whole_table(self, name,
                                                           session):
        campaign = run_app_campaign([SCENARIOS[name]], CHIP_TABLE, runs=80,
                                    seed=2, intensity=STRESS,
                                    session=session)
        assert campaign.weak_cells() == []

    def test_strong_chip_shows_nothing(self, session):
        campaign = run_app_campaign(select_scenarios(["all"], fenced="off"),
                                    ["GTX280"], runs=60, seed=3,
                                    intensity=STRESS, session=session)
        assert campaign.weak_cells() == []

    def test_campaign_grid_shape(self, session):
        campaign = run_app_campaign(select_scenarios(["deque-mp"]),
                                    ["Titan", "GTX7"], runs=40, seed=1,
                                    session=session)
        assert isinstance(campaign, CampaignResult)
        assert len(campaign) == 4
        assert campaign.get("deque-mp", "Titan").observations >= 0
        table = campaign.summary_table()
        assert "deque-mp+fenced" in table and "Titan" in table


class TestRuntimeSatellites:
    def test_unknown_chip_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            launch([Kernel([Store("x", 1)])], "GTX999", init_mem={"x": 0})
        message = str(excinfo.value)
        assert "GTX999" in message and "Titan" in message

    def test_trivial_condition(self):
        condition = trivial_condition()
        assert isinstance(condition.expr, Always)
        assert condition.registers() == set()
        assert condition.locations() == set()
        grid = Grid([Kernel([Store("x", 1)])], "GTX280", init_mem={"x": 0})
        assert isinstance(grid.test.condition.expr, Always)
        state = next(iter(grid.launch_batch(3, seed=0).counts))
        assert condition.holds(state)

    def test_launch_result_has_no_dead_iterations_field(self):
        result = launch([Kernel([Store("x", 1)])], "GTX280",
                        init_mem={"x": 0})
        assert isinstance(result, LaunchResult)
        assert not hasattr(result, "iterations")
        assert result["x"] == 1

    def test_grid_engines_bit_identical(self):
        kernels = [Kernel([Store("x", 1)]), Kernel([Load("v", "x")])]
        fast = Grid(kernels, "Titan", {"x": 0}, intensity=STRESS,
                    engine="fast")
        ref = Grid(kernels, "Titan", {"x": 0}, intensity=STRESS,
                   engine="reference")
        assert (fast.launch_batch(50, seed=6).counts
                == ref.launch_batch(50, seed=6).counts)

    def test_custom_locals_build_adhoc_scenario(self):
        from repro.apps import dot_product, cuda_by_example_lock
        wrong, runs = dot_product("GTX280", cuda_by_example_lock,
                                  fenced=False, locals_=(1, 2, 3), runs=20,
                                  seed=1)
        assert (wrong, runs) == (0, 20)

    def test_ticket_counter_honours_locals(self):
        from repro.apps import ticket_counter
        # A single ticket has no handoff race: always correct, unlike
        # the default two-ticket client under stress.
        alone, _ = ticket_counter("Titan", fenced=False, locals_=(1,),
                                  runs=50, seed=1, intensity=STRESS)
        racing, _ = ticket_counter("Titan", fenced=False, runs=50, seed=1,
                                   intensity=STRESS)
        assert alone == 0
        assert racing > 0

    def test_dot_product_scenario_unknown_lock(self):
        with pytest.raises(ConfigurationError):
            dot_product_scenario("mystery", fenced=False)


class TestCli:
    def test_list_includes_scenarios(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "deque-rt+fenced" in out
        assert "ticket" in out
        assert "app scenario families" in out

    def test_app_subcommand(self, capsys):
        code = cli.main(["app", "--scenario", "deque-mp", "--chips",
                         "Titan", "GTX280", "--runs", "60", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "deque-mp+fenced" in out
        assert "losses per 100k" in out

    def test_app_subcommand_rejects_bad_selector(self):
        with pytest.raises(SystemExit):
            cli.main(["app", "--scenario", "bogus"])
