"""Batch-engine contracts: the numpy lockstep lowering of
:mod:`repro.sim.batch`.

Unlike the fast engine (bit-identical to the reference interpreter),
the batch engine runs every iteration of a shard in lockstep and draws
from a numpy generator seeded off the shard's ``Random`` — a documented
RNG stream-break.  Its contract is therefore *distribution* equivalence:
same per-tick Markov process, so for the same cell the outcome
histograms agree within sampling noise (total variation distance inside
:func:`repro.perf.tvd_envelope`), weak-behaviour verdicts and scenario
loss verdicts match the fast engine, and a given seed is reproducible.
These tests enforce that contract plus the engine's plumbing (guarded
numpy dependency, fingerprint/cache-signature split, ``resolve_choice``
precedence for every engine knob).
"""

import random

import pytest

import repro.sim.batch as batch_module
from repro.api import RunSpec, Session, SimBackend, plan_shards
from repro.errors import ConfigurationError, ReproError
from repro.harness.histogram import Histogram
from repro.harness.incantations import best_for, efficacy
from repro.litmus import library
from repro.model.models import MODEL_ENGINES, resolve_model_engine
from repro.perf import tvd, tvd_envelope
from repro.sim import (CHIPS, ENGINES, BatchCell, compile_batch_cell,
                       compile_cell, have_numpy, resolve_engine, run_batch,
                       run_iterations)

requires_numpy = pytest.mark.skipif(not have_numpy(),
                                    reason="numpy not installed")

#: Cells spanning the behaviour classes: plain message passing, the
#: load-load hazard, store buffering, atomics and the L1-staleness
#: machinery, over both vendors.
CELLS = (
    ("mp", "Titan"),
    ("coRR", "GTX5"),
    ("sb", "TesC"),
    ("cas-sl", "GTX6"),
    ("mp-L1", "TesC"),
)


def _cell_pair(name, chip_short):
    """Build the fast and batch lowering of one corpus cell with the
    campaign's best incantations (the configuration the backends run)."""
    test = library.build(name)
    chip = CHIPS[chip_short]
    incantations = best_for(chip.vendor, test.idiom or "mp")
    intensity = efficacy(chip.vendor, test.idiom or "mp", incantations)
    shuffle = incantations.thread_rand
    fast = compile_cell(test, chip, intensity=intensity,
                        shuffle_placement=shuffle)
    batch = compile_batch_cell(test, chip, intensity=intensity,
                               shuffle_placement=shuffle)
    return test, fast, batch


@requires_numpy
class TestDistributionEquivalence:
    N = 1500

    def test_library_cells_equivalent(self):
        """The headline contract: per cell, the batch histogram stays
        within the sampling-noise TVD envelope of the fast engine's."""
        for name, chip in CELLS:
            _, fast, batch = _cell_pair(name, chip)
            fast_counts = run_batch(fast, self.N, random.Random(0)).counts
            batch_counts = batch.run_many(self.N, random.Random(0)).counts
            assert sum(batch_counts.values()) == self.N
            distance = tvd(fast_counts, batch_counts, self.N)
            assert distance <= tvd_envelope(self.N), (
                "%s on %s: TVD %.4f above envelope %.4f"
                % (name, chip, distance, tvd_envelope(self.N)))

    def test_weak_verdicts_agree(self):
        """Decisive weak-behaviour verdicts must match: a state mass
        >= 5 on one engine may not face a zero on the other."""
        for name, chip in CELLS:
            test, fast, batch = _cell_pair(name, chip)
            fast_weak = Histogram(dict(
                run_batch(fast, self.N, random.Random(1)).counts)
            ).observations(test.condition)
            batch_weak = Histogram(dict(
                batch.run_many(self.N, random.Random(1)).counts)
            ).observations(test.condition)
            if max(fast_weak, batch_weak) >= 5:
                assert (fast_weak > 0) == (batch_weak > 0), (
                    "%s on %s: weak verdict diverged (fast=%d batch=%d)"
                    % (name, chip, fast_weak, batch_weak))

    def test_run_once_matches_many_distribution(self):
        """``run_once`` (the compatibility path app grids use) samples
        the same distribution as the lockstep batch."""
        _, fast, batch = _cell_pair("mp", "Titan")
        rng = random.Random(3)
        once = Histogram()
        for _ in range(600):
            once.add(batch.run_once(rng))
        many = batch.run_many(600, random.Random(4))
        assert tvd(once.counts, many.counts, 600) <= tvd_envelope(600)


@requires_numpy
class TestDeterminism:
    def test_same_seed_reproduces(self):
        _, _, batch = _cell_pair("cas-sl", "GTX6")
        first = batch.run_many(500, random.Random(11)).counts
        again = batch.run_many(500, random.Random(11)).counts
        assert first == again

    def test_chunking_preserves_stream(self):
        """Chunk boundaries (MAX_BATCH) must not change the result for
        a given seed: each chunk reseeds off the same Random stream."""
        _, _, batch = _cell_pair("mp", "Titan")
        whole = batch.run_many(400, random.Random(7)).counts
        try:
            batch_module.MAX_BATCH = 64
            chunked = batch.run_many(400, random.Random(7)).counts
        finally:
            batch_module.MAX_BATCH = 25000
        assert sum(chunked.values()) == 400
        # Chunking changes batch widths, hence which numpy draws land on
        # which iteration — distribution equivalence is the contract.
        assert tvd(whole, chunked, 400) <= tvd_envelope(400)

    def test_accumulates_into_given_histogram(self):
        _, _, batch = _cell_pair("mp", "Titan")
        histogram = Histogram()
        out = batch.run_many(40, random.Random(0), histogram)
        assert out is histogram and histogram.total == 40
        batch.run_many(40, random.Random(1), histogram)
        assert histogram.total == 80


@requires_numpy
class TestScenarioLossVerdicts:
    def test_app_scenarios_agree(self):
        """Campaign loss verdicts: the batch lowering of the branchy
        spin-lock kernels reaches the same loss/no-loss verdict."""
        from repro.apps.scenario import get_scenario

        for scenario_name, chip_short in (("deque-lb", "HD7970"),
                                          ("ticket", "TesC")):
            scenario = get_scenario(scenario_name)
            test = scenario.test()
            chip = CHIPS[chip_short]
            runs = 400
            fast = compile_cell(test, chip, intensity=100.0)
            batch = compile_batch_cell(test, chip, intensity=100.0)
            fast_losses = Histogram(dict(
                run_batch(fast, runs, random.Random(2)).counts)
            ).observations(test.condition)
            batch_losses = Histogram(dict(
                batch.run_many(runs, random.Random(2)).counts)
            ).observations(test.condition)
            if max(fast_losses, batch_losses) >= 5:
                assert (fast_losses > 0) == (batch_losses > 0), (
                    "%s on %s: loss verdict diverged (fast=%d batch=%d)"
                    % (scenario_name, chip_short, fast_losses,
                       batch_losses))


class TestNumpyGuard:
    def test_batch_registered(self):
        assert "batch" in ENGINES

    def test_missing_numpy_raises_configuration_error(self, monkeypatch):
        monkeypatch.setattr(batch_module, "np", None)
        assert not have_numpy()
        with pytest.raises(ConfigurationError) as excinfo:
            compile_batch_cell(library.build("mp"), CHIPS["Titan"])
        # The error must name the install extra, not just say "no numpy".
        assert "repro[batch]" in str(excinfo.value)

    def test_missing_numpy_blocks_run_iterations(self, monkeypatch):
        monkeypatch.setattr(batch_module, "np", None)
        with pytest.raises(ConfigurationError):
            run_iterations(library.build("mp"), CHIPS["Titan"], 10,
                           engine="batch")

    def test_fast_and_reference_do_not_need_numpy(self, monkeypatch):
        """The guarded-dependency contract: everything except the batch
        engine keeps working when numpy is absent."""
        monkeypatch.setattr(batch_module, "np", None)
        counts = run_iterations(library.build("mp"), CHIPS["Titan"], 30,
                                seed=0, engine="fast")
        assert sum(counts.values()) == 30


@requires_numpy
class TestEnginePlumbing:
    def test_fingerprint_excludes_batch_engine(self):
        """Shard seeds stay engine-neutral — the same shards feed all
        three engines, which is what makes equivalence testable."""
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=100,
                            engine="fast")
        batch = spec.with_engine("batch")
        assert spec.fingerprint() == batch.fingerprint()
        assert ([shard.seed for shard in plan_shards(spec, 30)]
                == [shard.seed for shard in plan_shards(batch, 30)])

    def test_cache_signature_separates_all_engines(self):
        backend = SimBackend()
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=100)
        signatures = {backend.cache_signature(spec.with_engine(engine))
                      for engine in ENGINES}
        assert len(signatures) == len(ENGINES)

    def test_backend_memo_keeps_engines_apart(self):
        """One backend serving fast and batch specs of the same cell
        must hold two separate lowered cells."""
        backend = SimBackend()
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=50,
                            engine="fast")
        fast_machine = backend._machine(spec)
        batch_machine = backend._machine(spec.with_engine("batch"))
        assert isinstance(batch_machine, BatchCell)
        assert fast_machine is not batch_machine
        # Memoised: asking again returns the same lowered cells.
        assert backend._machine(spec) is fast_machine
        assert (backend._machine(spec.with_engine("batch"))
                is batch_machine)

    def test_backend_run_batch_engine(self):
        backend = SimBackend(shard_size=40)
        spec = RunSpec.make(library.build("sb"), "TesC", iterations=100,
                            seed=5, engine="batch")
        histogram = backend.run(spec)
        assert histogram.total == 100

    def test_session_batch_engine(self):
        session = Session(engine="batch", cache=False)
        result = session.run(library.build("mp"), "Titan", iterations=80,
                             seed=1)
        assert result.spec.engine == "batch"
        assert result.histogram.total == 80


class TestResolveChoicePrecedence:
    """The two-source engine-switch idiom, for all engine knobs."""

    KNOBS = (
        (resolve_engine, "REPRO_ENGINE", ENGINES, "fast"),
        (resolve_model_engine, "REPRO_MODEL_ENGINE", MODEL_ENGINES,
         "fast"),
    )

    def test_default_when_unset(self, monkeypatch):
        for resolve, env_var, _, default in self.KNOBS:
            monkeypatch.delenv(env_var, raising=False)
            assert resolve(None) == default

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        assert resolve_engine(None) == "batch"
        monkeypatch.setenv("REPRO_MODEL_ENGINE", "reference")
        assert resolve_model_engine(None) == "reference"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine("batch") == "batch"
        monkeypatch.setenv("REPRO_MODEL_ENGINE", "reference")
        assert resolve_model_engine("fast") == "fast"

    def test_every_choice_accepted(self):
        for resolve, _, choices, _ in self.KNOBS:
            for choice in choices:
                assert resolve(choice) == choice

    def test_invalid_explicit_lists_choices(self):
        for resolve, _, choices, _ in self.KNOBS:
            with pytest.raises(ReproError) as excinfo:
                resolve("warp-speed")
            message = str(excinfo.value)
            assert "warp-speed" in message
            for choice in choices:
                assert choice in message

    def test_invalid_env_lists_choices(self, monkeypatch):
        for resolve, env_var, choices, _ in self.KNOBS:
            monkeypatch.setenv(env_var, "warp-speed")
            with pytest.raises(ConfigurationError) as excinfo:
                resolve(None)
            message = str(excinfo.value)
            assert env_var in message
            for choice in choices:
                assert choice in message

    def test_spec_resolves_env_for_both_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        monkeypatch.setenv("REPRO_MODEL_ENGINE", "reference")
        spec = RunSpec.make(library.build("mp"), "Titan", iterations=10)
        assert spec.engine == "batch"
        assert spec.model_engine == "reference"
