"""Tests for the -Xptxas -dlcm=cg experimental fix (Sec. 3.1.2)."""

import pytest

from repro.compiler.flags import DLCM_FLAG, apply_cache_flags
from repro.litmus import library
from repro.ptx import CacheOp, Ld, St
from repro.ptx.types import Scope
from repro.sim import chip, run_iterations


def _weak(test, chip_name, iterations=3000, seed=5):
    histogram = run_iterations(test, chip(chip_name), iterations, seed=seed)
    return sum(count for state, count in histogram.items()
               if test.condition.holds(state))


class TestCacheFlagRewriting:
    def test_ca_loads_become_cg(self):
        rewritten = apply_cache_flags(library.build("mp-L1"))
        for thread in rewritten.threads:
            for instruction in thread:
                if isinstance(instruction, (Ld, St)):
                    assert instruction.effective_cop is CacheOp.CG

    def test_volatile_untouched(self):
        rewritten = apply_cache_flags(library.build("mp-volatile"))
        assert rewritten.uses_volatile()

    def test_name_records_the_flag(self):
        rewritten = apply_cache_flags(library.build("mp-L1"))
        assert "dlcm=cg" in rewritten.name
        assert "dlcm=cg" in DLCM_FLAG

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            apply_cache_flags("mp-L1")


class TestTheExperimentalFix:
    """The paper's Sec. 3.1.2 resolution: on the Tesla C2075, fenced
    mp-L1 stays weak with ``.ca`` loads, but setting cache operators to
    ``.cg`` and using membar.gl forbids the behaviour
    (the online test mp+membar.gls)."""

    def test_fenced_ca_loads_still_weak_on_tesc(self):
        fenced = library.mp_l1(fence=Scope.GL)
        assert _weak(fenced, "TesC", iterations=20000) > 0

    def test_flagged_and_fenced_is_sound_on_tesc(self):
        fixed = apply_cache_flags(library.mp_l1(fence=Scope.GL))
        assert _weak(fixed, "TesC", iterations=20000) == 0

    def test_flags_alone_do_not_fix_unfenced_mp(self):
        unfenced = apply_cache_flags(library.mp_l1(fence=None))
        assert _weak(unfenced, "TesC") > 0

    def test_model_verdicts_match(self):
        from repro.model.models import ptx_model
        model = ptx_model()
        fixed = apply_cache_flags(library.mp_l1(fence=Scope.GL))
        assert not model.allows_condition(fixed)
        unfenced = apply_cache_flags(library.mp_l1(fence=None))
        assert model.allows_condition(unfenced)
