"""Unit tests for the thread engine: decode stalls, issue rules, window."""

import random

import pytest

from repro.ptx import parse_lines
from repro.ptx.operands import Imm, Loc
from repro.ptx.program import ThreadProgram
from repro.ptx.types import MemorySpace, Scope
from repro.sim.chip import ChipProfile
from repro.sim.engine import LOAD, PendingOp, STORE, ThreadEngine
from repro.sim.memory import MemorySystem

ADDRESSES = {"x": 0x100, "y": 0x140, "m": 0x180}


def _chip(**relax):
    return ChipProfile(name="t", short="T", vendor="Nvidia",
                       architecture="Test", year=2020, n_sms=1,
                       p_relax=relax, atomic_ordered=False,
                       volatile_ordered=False)


def _engine(text, chip=None, reg_init=None):
    program = ThreadProgram(0, parse_lines(text))
    chip = chip or _chip(r_pass_w=1.0, w_pass_w=1.0, r_pass_r=1.0,
                         w_pass_r=1.0, rr_hazard=1.0)
    memory = MemorySystem(chip, random.Random(0), n_sms=1)
    for address in ADDRESSES.values():
        memory.install(address, 0, MemorySpace.GLOBAL)
    return ThreadEngine(program=program, sm=0, chip=chip, memory=memory,
                        address_map=ADDRESSES, reg_init=reg_init or {},
                        fence_effective=lambda scope: True,
                        rng=random.Random(0))


def _intents(**kwargs):
    intents = {key: False for key in
               ("r_pass_w", "w_pass_w", "r_pass_r", "w_pass_r", "rr_hazard")}
    intents["volatile_relax"] = True
    for scope in Scope:
        intents["mixed_bypass_%s" % scope.value] = False
        intents["ca_bypass_%s" % scope.value] = False
    intents.update(kwargs)
    return intents


class TestDecode:
    def test_window_fills_before_issue(self):
        engine = _engine("""
            st.cg.s32 [x], 1
            st.cg.s32 [y], 1
            ld.cg.s32 r0, [x]
        """)
        engine.decode()
        assert len(engine.queue) == 3

    def test_alu_executes_in_frontend(self):
        engine = _engine("""
            mov.s32 r0, 5
            add.s32 r1, r0, 2
            st.cg.s32 [x], r1
        """)
        engine.decode()
        assert engine.regs["r1"] == 7
        assert engine.queue[0].value == 7

    def test_data_dependent_store_stalls(self):
        engine = _engine("""
            ld.cg.s32 r0, [x]
            add.s32 r1, r0, 1
            st.cg.s32 [y], r1
        """)
        engine.decode()
        # The add cannot execute until the load issues: only the load is
        # in the queue.
        assert [op.kind for op in engine.queue] == [LOAD]
        engine.issue(engine.queue[0])
        engine.decode()
        assert [op.kind for op in engine.queue] == [STORE]

    def test_guard_on_pending_register_stalls(self):
        engine = _engine("""
            ld.cg.s32 r0, [x]
            setp.eq.s32 p, r0, 0
            @p st.cg.s32 [y], 1
        """)
        engine.decode()
        assert len(engine.queue) == 1  # just the load

    def test_guarded_skip(self):
        engine = _engine("""
            mov.s32 r0, 1
            setp.eq.s32 p, r0, 0
            @p st.cg.s32 [y], 1
            st.cg.s32 [x], 1
        """)
        engine.decode()
        kinds = [(op.kind, op.address) for op in engine.queue]
        assert kinds == [(STORE, ADDRESSES["x"])]

    def test_address_register_from_reg_init(self):
        engine = _engine("ld.cg.s32 r0, [r1]",
                         reg_init={(0, "r1"): Loc("y")})
        engine.decode()
        assert engine.queue[0].address == ADDRESSES["y"]

    def test_immediate_reg_init(self):
        engine = _engine("st.cg.s32 [x], r5", reg_init={(0, "r5"): Imm(9)})
        engine.decode()
        assert engine.queue[0].value == 9


class TestMayPass:
    def _ops(self, younger_kind, older_kind, same_addr=False,
             younger_volatile=False, older_volatile=False):
        older = PendingOp(seq=0, kind=older_kind, address=0x100,
                          volatile=older_volatile, cop="cg")
        younger = PendingOp(seq=1, kind=younger_kind,
                            address=0x100 if same_addr else 0x140,
                            volatile=younger_volatile, cop="cg")
        return younger, older

    def test_relaxations_gated_by_intents(self):
        engine = _engine("st.cg.s32 [x], 1")
        cases = {
            ("R", "W"): "r_pass_w", ("W", "W"): "w_pass_w",
            ("R", "R"): "r_pass_r", ("W", "R"): "w_pass_r",
        }
        for (younger, older), intent in cases.items():
            y, o = self._ops(younger, older)
            assert not engine.may_pass(y, o, _intents())
            assert engine.may_pass(y, o, _intents(**{intent: True}))

    def test_same_address_blocks_except_rr(self):
        engine = _engine("st.cg.s32 [x], 1")
        y, o = self._ops("W", "W", same_addr=True)
        assert not engine.may_pass(y, o, _intents(w_pass_w=True))
        y, o = self._ops("R", "R", same_addr=True)
        assert not engine.may_pass(y, o, _intents(r_pass_r=True))
        assert engine.may_pass(y, o, _intents(rr_hazard=True))

    def test_mixed_cop_same_address_uses_mixed_hazard(self):
        engine = _engine("st.cg.s32 [x], 1")
        older = PendingOp(seq=0, kind="R", address=0x100, cop="cg")
        younger = PendingOp(seq=1, kind="R", address=0x100, cop="ca")
        intents = _intents(rr_hazard=True)
        intents["mixed_hazard"] = False
        assert not engine.may_pass(younger, older, intents)
        intents["mixed_hazard"] = True
        assert engine.may_pass(younger, older, intents)

    def test_fence_blocks_everything_by_default(self):
        engine = _engine("membar.gl")
        fence = PendingOp(seq=0, kind="F", scope=Scope.GL)
        younger = PendingOp(seq=1, kind="R", address=0x100, cop="cg")
        assert not engine.may_pass(younger, fence,
                                   _intents(r_pass_r=True, r_pass_w=True))

    def test_ca_load_can_bypass_fence_with_intent(self):
        engine = _engine("membar.gl")
        fence = PendingOp(seq=0, kind="F", scope=Scope.GL)
        younger = PendingOp(seq=1, kind="R", address=0x100, cop="ca")
        intents = _intents()
        intents["ca_bypass_gl"] = True
        assert engine.may_pass(younger, fence, intents)
        # A .cg load never bypasses.
        cg = PendingOp(seq=1, kind="R", address=0x100, cop="cg")
        assert not engine.may_pass(cg, fence, intents)

    def test_atomic_ordered_blocks_atomics(self):
        chip = ChipProfile(name="t", short="T", vendor="Nvidia",
                           architecture="Test", year=2020, n_sms=1,
                           p_relax={"w_pass_w": 1.0}, atomic_ordered=True)
        engine = _engine("st.cg.s32 [x], 1", chip=chip)
        exch = PendingOp(seq=1, kind="EXCH", address=0x140, value=0, dst="r0")
        store = PendingOp(seq=0, kind="W", address=0x100, value=1, cop="cg")
        assert not engine.may_pass(exch, store, _intents(w_pass_w=True))

    def test_volatile_pair_needs_relax_intent(self):
        engine = _engine("st.cg.s32 [x], 1")
        y, o = self._ops("R", "R", younger_volatile=True, older_volatile=True)
        intents = _intents(r_pass_r=True)
        intents["volatile_relax"] = False
        assert not engine.may_pass(y, o, intents)
        intents["volatile_relax"] = True
        assert engine.may_pass(y, o, intents)


class TestIssue:
    def test_in_order_without_intents(self):
        engine = _engine("""
            st.cg.s32 [x], 1
            ld.cg.s32 r0, [y]
        """)
        while not engine.done:
            engine.tick(_intents())
        assert engine.memory.read(0, ADDRESSES["x"], cop="cg") == 1
        assert engine.regs["r0"] == 0

    def test_eligible_respects_order(self):
        engine = _engine("""
            st.cg.s32 [x], 1
            ld.cg.s32 r0, [y]
        """)
        engine.decode()
        assert [op.kind for op in engine.eligible_ops(_intents())] == [STORE]
        eligible = engine.eligible_ops(_intents(r_pass_w=True))
        assert {op.kind for op in eligible} == {STORE, LOAD}

    def test_cas_success_and_failure(self):
        engine = _engine("""
            atom.cas.b32 r0, [m], 0, 1
            atom.cas.b32 r1, [m], 0, 2
        """)
        while not engine.done:
            engine.tick(_intents())
        assert engine.regs["r0"] == 0  # succeeded
        assert engine.regs["r1"] == 1  # saw the lock taken
        assert engine.memory.read(0, ADDRESSES["m"], cop="cg") == 1

    def test_ineffective_fence_skipped_at_decode(self):
        program = ThreadProgram(0, parse_lines("""
            st.cg.s32 [x], 1
            membar.cta
            st.cg.s32 [y], 1
        """))
        chip = _chip(w_pass_w=1.0)
        memory = MemorySystem(chip, random.Random(0), n_sms=1)
        for address in ADDRESSES.values():
            memory.install(address, 0, MemorySpace.GLOBAL)
        engine = ThreadEngine(program=program, sm=0, chip=chip, memory=memory,
                              address_map=ADDRESSES, reg_init={},
                              fence_effective=lambda scope: False,
                              rng=random.Random(0))
        engine.decode()
        assert all(not op.is_fence for op in engine.queue)
        assert len(engine.queue) == 2
