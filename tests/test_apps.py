"""Tests for the application studies: spin locks and the deque."""

import pytest

from repro.apps import (Grid, cuda_by_example_lock, dot_product, he_yu_lock,
                        isolation_test, launch, lb_scenario, mp_scenario,
                        stuart_owens_lock)
from repro.compiler.cuda import Kernel, Load, Store

#: High intensity stands in for the paper's stressful workloads: the app
#: bugs occur at 4-750 per 100k on hardware, far below unit-test budgets.
STRESS = 100.0


class TestRuntime:
    def test_launch_returns_final_memory(self):
        result = launch([Kernel([Store("x", 1)]), Kernel([Load("v", "x")])],
                        "GTX7", init_mem={"x": 0})
        assert result["x"] == 1

    def test_empty_memory_rejected(self):
        with pytest.raises(ValueError):
            launch([Kernel([Store("x", 1)])], "GTX7", init_mem={})

    def test_launch_many_deterministic(self):
        grid = Grid([Kernel([Store("x", 1)])], "Titan", init_mem={"x": 0})
        a = [r.memory for r in grid.launch_many(5, seed=1)]
        b = [r.memory for r in grid.launch_many(5, seed=1)]
        assert a == b


class TestCudaByExampleLock:
    def test_buggy_lock_loses_updates_on_weak_chips(self):
        wrong, runs = dot_product("Titan", cuda_by_example_lock, fenced=False,
                                  runs=200, seed=1, intensity=STRESS)
        assert wrong > 0

    def test_fenced_lock_always_correct(self):
        wrong, _ = dot_product("Titan", cuda_by_example_lock, fenced=True,
                               runs=200, seed=1, intensity=STRESS)
        assert wrong == 0

    def test_maxwell_unaffected(self):
        # GTX 750 orders atomics: the published lock happens to work.
        wrong, _ = dot_product("GTX7", cuda_by_example_lock, fenced=False,
                               runs=200, seed=1, intensity=STRESS)
        assert wrong == 0

    def test_amd_also_affected(self):
        wrong, _ = dot_product("HD7970", cuda_by_example_lock, fenced=False,
                               runs=200, seed=1, intensity=STRESS)
        assert wrong > 0


class TestStuartOwensLock:
    def test_exchange_is_no_substitute_for_a_fence(self):
        wrong, _ = dot_product("Titan", stuart_owens_lock, fenced=False,
                               runs=200, seed=2, intensity=STRESS)
        assert wrong > 0

    def test_fenced_version_correct(self):
        wrong, _ = dot_product("Titan", stuart_owens_lock, fenced=True,
                               runs=200, seed=2, intensity=STRESS)
        assert wrong == 0


class TestHeYuLock:
    def test_isolation_violated_by_published_lock(self):
        violations, _ = isolation_test("Titan", fixed=False, runs=200, seed=1,
                                       intensity=STRESS)
        assert violations > 0

    def test_fixed_lock_preserves_isolation(self):
        violations, _ = isolation_test("Titan", fixed=True, runs=200, seed=1,
                                       intensity=STRESS)
        assert violations == 0

    def test_lock_shapes(self):
        acquire, release = he_yu_lock(fixed=False)
        # The published release is a plain store followed by the useless
        # trailing fence (Fig. 10 lines 10-11).
        assert any(isinstance(s, Store) for s in release)


class TestWorkStealingDeque:
    def test_mp_bug_loses_pushed_task(self):
        lost, _ = mp_scenario("Titan", fenced=False, runs=300, seed=1,
                              intensity=STRESS)
        assert lost > 0

    def test_mp_bug_fixed_by_fences(self):
        lost, _ = mp_scenario("Titan", fenced=True, runs=300, seed=1,
                              intensity=STRESS)
        assert lost == 0

    def test_lb_bug_steals_future_push(self):
        lost, _ = lb_scenario("Titan", fenced=False, runs=300, seed=1,
                              intensity=STRESS)
        assert lost > 0

    def test_lb_bug_fixed_by_fences(self):
        lost, _ = lb_scenario("Titan", fenced=True, runs=300, seed=1,
                              intensity=STRESS)
        assert lost == 0

    def test_deque_safe_on_strong_chip(self):
        lost, _ = mp_scenario("GTX280", fenced=False, runs=200, seed=1,
                              intensity=STRESS)
        assert lost == 0
        lost, _ = lb_scenario("GTX280", fenced=False, runs=200, seed=1,
                              intensity=STRESS)
        assert lost == 0

    def test_lb_bug_on_gcn(self):
        # Fig. 8: HD7970 shows dlb-lb at 13591/100k — the strongest case.
        lost, _ = lb_scenario("HD7970", fenced=False, runs=300, seed=1)
        assert lost > 0
